"""Pointer-based counting evaluator (§3.4 and Algorithm 2).

This module is the executable form of the paper's implementation notes:
instead of evaluating the weakly-stratified rewritten program through a
generic engine, the counting set is built directly during the DFS over
the left-part graph (the paper's Bushy-Depth-First fixpoint), back-arc
information is folded into the counting tuples (making the predicate
``f`` unnecessary), and the answer phase navigates tuple identifiers —
"a direct access to the memory".

Data model
----------

* A *node* is a pair ``(predicate key, bound-argument values)`` — the
  clique may contain several mutually recursive predicates.
* The :class:`CountingTable` holds one row per node reachable from the
  query constants.  Each row carries the set of *in-triples*
  ``(rule label, shared values, predecessor id)`` — one per left-part
  arc entering the node, ahead and back arcs alike.  The source row
  carries the sentinel triple ``(None, (), None)``.
* The answer phase derives *states* ``(predicate key, answer values,
  row id)``: the predicate instance holds at ``(row.values, answer
  values)``.  Exit rules seed states; each modified-rule step consumes
  one in-triple of the state's row, applies the source rule's right
  part and moves to the predecessor row.  A state whose row is the
  source row yields an answer.

The state space is finite — at most ``|answers| × |rows|`` states — for
*any* database, cyclic or not, which is the effective content of
Theorem 2(3).  On acyclic data the table coincides with the §3.4
pointer implementation; the back-arc triples are exactly the extra
information Algorithm 2 adds.
"""

from array import array

from ..engine import faults
from ..engine.compile import bound_query
from ..engine.instrumentation import EvalStats
from ..errors import EvaluationError, NotApplicableError
from ..graph.dfs import classify_arcs

#: Sentinel triple marking the source row.
SOURCE_TRIPLE = (None, (), None)

#: Flat-array encoding of "no predecessor" (the source sentinel).
_NO_PREV = -1


class _TripleView:
    """One row's in-triples, viewed over the table's flat arrays.

    Keeps the historical ``row.triples`` list surface — ``append``,
    iteration, ``len``, ``in``, indexing — while the storage lives in
    the :class:`CountingTable`'s parallel arrays.  Iteration
    materializes ``(label, shared values, predecessor id)`` tuples on
    the fly; hot loops inside the engine skip the tuples and read the
    arrays through the ordinals directly.
    """

    __slots__ = ("_table", "_row_id", "ordinals")

    def __init__(self, table, row_id):
        self._table = table
        self._row_id = row_id
        #: Positions of this row's triples in the flat arrays, in
        #: append order.
        self.ordinals = []

    def append(self, triple):
        label, shared, prev = triple
        table = self._table
        self.ordinals.append(len(table.t_label))
        table.t_label.append(label)
        table.t_shared.append(shared)
        table.t_prev.append(_NO_PREV if prev is None else prev)
        table.t_row.append(self._row_id)

    def _triple(self, ordinal):
        table = self._table
        prev = table.t_prev[ordinal]
        return (
            table.t_label[ordinal],
            table.t_shared[ordinal],
            None if prev == _NO_PREV else prev,
        )

    def __len__(self):
        return len(self.ordinals)

    def __iter__(self):
        for ordinal in self.ordinals:
            yield self._triple(ordinal)

    def __getitem__(self, index):
        picked = self.ordinals[index]
        if isinstance(index, slice):
            return [self._triple(o) for o in picked]
        return self._triple(picked)

    def __contains__(self, triple):
        return any(candidate == triple for candidate in self)

    def __repr__(self):
        return "_TripleView(o%d, %r)" % (self._row_id, list(self))


class CountingRow:
    """One node of the counting set."""

    __slots__ = ("id", "pred", "values", "triples")

    def __init__(self, row_id, pred, values, table):
        self.id = row_id
        self.pred = pred
        self.values = values
        #: View of (rule label, shared values, predecessor row id)
        #: in-triples; storage lives in the table's flat arrays.
        self.triples = _TripleView(table, row_id)

    def __repr__(self):
        return "CountingRow(o%d, %s%r, %d triples)" % (
            self.id, self.pred[0], self.values, len(self.triples)
        )


class CountingTable:
    """The per-node counting set with predecessor triples.

    Triples are stored as flat parallel arrays — ``t_label`` /
    ``t_shared`` (lists) and ``t_prev`` / ``t_row`` (``array('q')``
    machine words, ``-1`` encoding "no predecessor") — with each row
    keeping the ordinals of its own triples.  One triple therefore
    costs two list slots and two machine words instead of a dedicated
    tuple object, and the answer phase unwinds by indexing the arrays
    directly instead of destructuring tuples.
    """

    __slots__ = ("rows", "index", "source_id", "back_arc_count",
                 "ahead_arc_count", "t_label", "t_shared", "t_prev",
                 "t_row")

    def __init__(self):
        self.rows = []
        self.index = {}
        self.source_id = 0
        self.back_arc_count = 0
        self.ahead_arc_count = 0
        #: Flat parallel triple arrays; entry ``i`` is one in-triple of
        #: row ``t_row[i]``.
        self.t_label = []
        self.t_shared = []
        self.t_prev = array("q")
        self.t_row = array("q")

    def row_for(self, pred, values):
        key = (pred, values)
        row_id = self.index.get(key)
        if row_id is None:
            row_id = len(self.rows)
            self.index[key] = row_id
            self.rows.append(CountingRow(row_id, pred, values, self))
        return self.rows[row_id]

    def __len__(self):
        return len(self.rows)

    @property
    def triple_count(self):
        """Total in-triples: the §3.4 per-arc counting-set size."""
        return len(self.t_label)

    def is_acyclic(self):
        return self.back_arc_count == 0

    def render(self):
        """The paper's notation for counting sets, e.g.
        ``o4 : (d, {(r1, [], o3), (r1, [], o5)})``."""
        from ..datalog.pretty import format_value

        def fmt_id(row_id):
            return "nil" if row_id is None else "o%d" % (row_id + 1)

        lines = []
        for row in self.rows:
            triples = ", ".join(
                "(%s, %s, %s)" % (
                    label if label is not None else "r0",
                    format_value(tuple(shared)),
                    fmt_id(prev),
                )
                for label, shared, prev in row.triples
            )
            values = ", ".join(format_value(v) for v in row.values)
            lines.append(
                "%s : (%s, {%s})" % (fmt_id(row.id), values, triples)
            )
        return "\n".join(lines)


class CountingEngine:
    """Two-phase counting evaluation of one canonical clique.

    Parameters
    ----------
    canonical : :class:`~repro.rewriting.canonical.CanonicalClique`
    goal_key : adorned predicate key of the query goal.
    source_values : tuple of the goal's bound constants.
    get_relation : callable key -> relation (database plus support
        predicates materialized by lower cliques).
    stats : optional shared :class:`EvalStats`.
    require_acyclic : raise :class:`NotApplicableError` if the left
        graph has back arcs (the §3.4 acyclic pointer method).
    """

    def __init__(self, canonical, goal_key, source_values, get_relation,
                 stats=None, require_acyclic=False, answer_order="bfs",
                 budget=None, query_cache=None, table_store=None):
        self.canonical = canonical
        self.goal_key = goal_key
        self.source_values = tuple(source_values)
        self.get_relation = get_relation
        self.stats = stats if stats is not None else EvalStats()
        self.require_acyclic = require_acyclic
        #: Optional :class:`~repro.engine.guard.ResourceBudget` checked
        #: per node expansion in the counting-set DFS and per state pop
        #: in the answer phase.
        self.budget = budget
        if answer_order not in ("bfs", "dfs"):
            raise ValueError("answer_order must be 'bfs' or 'dfs'")
        #: Exploration order of the answer phase.  ``"dfs"`` is the
        #: Bushy-Depth-First discipline of the LDL prototype [7] the
        #: paper's implementation notes assume: each exit tuple is
        #: unwound to the source before the next is touched, keeping
        #: the frontier small.  Both orders visit the same state set.
        self.answer_order = answer_order
        self.rules_by_label = {
            rule.label: rule for rule in canonical.recursive_rules
        }
        #: Per-call-site compiled bound queries (see
        #: :class:`~repro.engine.compile.BoundQuery`), keyed by rule
        #: identity.  Each body is compiled once and re-run under fresh
        #: positional bindings for every node/state, replacing the
        #: per-visit dict-substitution evaluation.  A prepared query
        #: passes a shared ``query_cache`` dict so the compilation
        #: survives across engine instances for the same clique.
        self._queries = query_cache if query_cache is not None else {}
        #: Per-engine bound runners (``BoundQuery.bind``): these embed
        #: this engine's resolver and its hoisted relation/view state,
        #: so they must never travel through the shared ``query_cache``
        #: — a later engine over a different database would otherwise
        #: probe the first database's relations.
        self._bound = {}
        #: Optional node-keyed counting-table store (``get(node)`` /
        #: ``put(node, table)``): when the source node was already
        #: explored by an earlier run, phase 1 (the left-graph DFS and
        #: ahead/back-arc construction) is skipped entirely and the run
        #: goes straight to the answer phase.
        self.table_store = table_store
        #: True when phase 1 was served from ``table_store``.
        self.table_reused = False
        #: Optional replacement for :meth:`_successors` during phase 1 —
        #: :func:`repro.parallel.counting.parallel_successor_map` installs
        #: a cache-backed resolver here so the counting-set DFS replays
        #: worker-computed expansions instead of probing the database.
        self.successor_resolver = None
        self.table = None
        self._answers = None
        self._parents = {}
        self._state_count = 0
        #: Largest pending-frontier size seen (memory high-water mark).
        self.max_frontier = 0
        # Per-site caches resolving rule -> (rule, bound runner) without
        # rebuilding the positional in-name tuples on every state (the
        # answer phase visits |answers| x |rows| states; the queries
        # themselves are shared through ``self._queries``).
        self._unwind_entries = {}
        self._left_linear_entries = {}
        self._exit_entries = {}

    # -- phase 1: counting set ---------------------------------------

    def _resolver(self, _index, atom):
        return self.get_relation(atom.key)

    def _query(self, site, rule, body, in_names, out_names):
        """The cached bound runner for one (call site, rule).

        The shared :class:`BoundQuery` is bound to this engine's
        resolver (``BoundQuery.bind``), so repeated runs reuse the
        resolved relations and hoisted probe views across every state
        expansion of the run.  Safe because ``get_relation`` is a
        fixed mapping for one engine's lifetime: the support engine
        (if any) finished before construction, and evaluation never
        creates or replaces database relations.
        """
        key = (site, id(rule))
        runner = self._bound.get(key)
        if runner is None:
            query = self._queries.get(key)
            if query is None:
                query = bound_query(body, in_names, out_names)
                self._queries[key] = query
            runner = query.bind(self._resolver)
            self._bound[key] = runner
        return runner

    def _successors(self, node):
        """Left-graph successors of ``node`` with (label, shared) labels."""
        if self.budget is not None:
            self.budget.check(self.stats)
        pred, values = node
        results = []
        for rule in self.canonical.recursive_rules:
            if rule.head_key != pred:
                continue
            if rule.is_left_linear_shape():
                # Empty left part: the rule contributes no arc to G_L;
                # the answer phase applies it in place (same row).
                continue
            query = self._query(
                "left", rule, rule.left, rule.bound_vars,
                rule.rec_bound_vars + rule.shared_vars,
            )
            split = len(rule.rec_bound_vars)
            self.stats.rule_firings += 1
            for result in query(values, self.stats):
                results.append(
                    ((rule.rec_key, result[:split]),
                     (rule.label, result[split:]))
                )
        return results

    def build_counting_set(self):
        """DFS the left graph and materialize the counting table.

        With a ``table_store``, a node already explored by an earlier
        run returns its memoized table without touching the database —
        the §3.4 counting set is node-keyed, so it is independent of
        which query instance reached the node first.  The store is
        responsible for epoch validity (see
        :class:`~repro.exec.cache.CountingTableStore`); a memoized
        table with back arcs still raises under ``require_acyclic``
        exactly like a freshly built one.
        """
        source = (self.goal_key, self.source_values)
        if self.table_store is not None:
            table = self.table_store.get(source)
            if table is not None:
                if self.require_acyclic and not table.is_acyclic():
                    raise NotApplicableError(
                        "left-part graph contains %d back arcs; the "
                        "acyclic pointer method does not apply"
                        % table.back_arc_count
                    )
                self.table = table
                self.table_reused = True
                return table
        classification = classify_arcs(
            source, self.successor_resolver or self._successors
        )
        if self.require_acyclic and not classification.is_acyclic():
            raise NotApplicableError(
                "left-part graph contains %d back arcs; the acyclic "
                "pointer method does not apply"
                % len(classification.back)
            )
        table = CountingTable()
        source_row = table.row_for(*source)
        table.source_id = source_row.id
        source_row.triples.append(SOURCE_TRIPLE)
        # Discovery order assigns ids; arcs become in-triples.
        for node in classification.order:
            table.row_for(*node)
        for arc in classification.ahead:
            target = table.row_for(*arc.target)
            source_id = table.row_for(*arc.source).id
            label, shared = arc.label
            target.triples.append((label, shared, source_id))
            table.ahead_arc_count += 1
            self.stats.facts_derived += 1
        for arc in classification.back:
            target = table.row_for(*arc.target)
            source_id = table.row_for(*arc.source).id
            label, shared = arc.label
            target.triples.append((label, shared, source_id))
            table.back_arc_count += 1
            self.stats.facts_derived += 1
        self.table = table
        if self.table_store is not None:
            self.table_store.put(source, table)
        return table

    # -- phase 2: answers ---------------------------------------------

    def _exit_queries(self, pred):
        """Cached ``(rule, query)`` pairs of the exit rules for ``pred``."""
        entries = self._exit_entries.get(pred)
        if entries is None:
            exit_rules, _ = self.canonical.rules_by_head(pred)
            entries = tuple(
                (exit_rule,
                 self._query("exit", exit_rule, exit_rule.body,
                             exit_rule.bound_vars, exit_rule.free_vars))
                for exit_rule in exit_rules
            )
            self._exit_entries[pred] = entries
        return entries

    def _exit_states(self):
        """Seed states from the exit rules at every counting node."""
        for row in self.table.rows:
            for exit_rule, query in self._exit_queries(row.pred):
                self.stats.rule_firings += 1
                for values in query(row.values, self.stats):
                    yield (row.pred, values, row.id), exit_rule.label

    def _apply_left_linear(self, state):
        """Apply left-linear rules in place (no triple is consumed).

        A left-linear rule has an empty left part and carries the bound
        arguments through unchanged, so it transforms the answer values
        while staying at the same counting row.
        """
        pred, values, row_id = state
        row = self.table.rows[row_id]
        entries = self._left_linear_entries.get(pred)
        if entries is None:
            entries = tuple(
                (rule,
                 self._query("right", rule, rule.right,
                             rule.rec_free_vars + rule.bound_vars,
                             rule.free_vars))
                for rule in self.canonical.recursive_rules
                if rule.is_left_linear_shape() and rule.head_key == pred
            )
            self._left_linear_entries[pred] = entries
        for rule, query in entries:
            self.stats.rule_firings += 1
            for out in query(values + row.values, self.stats):
                yield (rule.head_key, out, row_id), rule.label

    def _unwind_entry(self, label):
        """Cached ``(rule, query)`` for one modified-rule pop step."""
        entry = self._unwind_entries.get(label)
        if entry is None:
            rule = self.rules_by_label[label]
            entry = (
                rule,
                self._query(
                    "unwind", rule, rule.right,
                    rule.rec_free_vars + rule.shared_vars
                    + rule.bound_vars + rule.rec_bound_vars,
                    rule.free_vars,
                ),
            )
            self._unwind_entries[label] = entry
        return entry

    def _unwind(self, state):
        """Apply one pop step: consume a triple of the state's row.

        Reads the table's flat triple arrays through the row's
        ordinals — no per-triple tuple is materialized on this path.
        """
        pred, values, row_id = state
        table = self.table
        rows = table.rows
        row = rows[row_id]
        labels = table.t_label
        shareds = table.t_shared
        prevs = table.t_prev
        stats = self.stats
        for ordinal in row.triples.ordinals:
            label = labels[ordinal]
            if label is None:
                continue
            rule, query = self._unwind_entry(label)
            if rule.rec_key != pred:
                continue
            prev_id = prevs[ordinal]
            stats.rule_firings += 1
            for out in query(
                values + shareds[ordinal] + rows[prev_id].values
                + row.values,
                stats,
            ):
                yield (rule.head_key, out, prev_id), rule.label

    def compute_answers(self):
        """Run the answer phase; returns the set of answer tuples.

        Answers are projections onto the goal's free arguments: states
        that reach the source row with the goal predicate.
        """
        from collections import deque

        if self.table is None:
            self.build_counting_set()
        parents = {}
        answers = set()
        pending = deque()
        for state, label in self._exit_states():
            if state not in parents:
                parents[state] = (label, None)
                pending.append(state)
            else:
                self.stats.facts_duplicate += 1
        self.max_frontier = len(pending)
        while pending:
            if self.budget is not None:
                self.budget.check(self.stats)
            faults.fire("unwind", self.stats)
            self.stats.iterations += 1
            if self.answer_order == "dfs":
                state = pending.pop()
            else:
                state = pending.popleft()
            if (
                state[2] == self.table.source_id
                and state[0] == self.goal_key
            ):
                answers.add(state[1])
            for producer in (self._unwind, self._apply_left_linear):
                for new_state, label in producer(state):
                    if new_state in parents:
                        self.stats.facts_duplicate += 1
                        continue
                    parents[new_state] = (label, state)
                    self.stats.facts_derived += 1
                    pending.append(new_state)
            self.max_frontier = max(self.max_frontier, len(pending))
        self._answers = frozenset(answers)
        self._parents = parents
        self._state_count = len(parents)
        return self._answers

    def answer_path(self, answer_values):
        """The derivation steps behind one answer tuple.

        Returns the list of ``(rule_label, node_values, answer_values)``
        steps from the exit tuple to the source row — the unwinding of
        the counting prefix.  The first entry is the exit-rule firing.
        Raises :class:`EvaluationError` if :meth:`compute_answers` has
        not run yet, and :class:`KeyError` for values that are not
        answers.
        """
        if self._answers is None:
            raise EvaluationError("answer phase has not run")
        state = (self.goal_key, tuple(answer_values),
                 self.table.source_id)
        if state not in self._parents:
            raise KeyError(answer_values)
        steps = []
        while state is not None:
            label, parent = self._parents[state]
            pred, values, row_id = state
            steps.append(
                (label, self.table.rows[row_id].values, values)
            )
            state = parent
        steps.reverse()
        return steps

    @property
    def state_count(self):
        """Number of distinct answer-phase states (Theorem 2 bound)."""
        return self._state_count

    def run(self):
        """Build (or reuse) the counting set and compute the answers."""
        if self.table is None:
            self.build_counting_set()
        return self.compute_answers()
