"""Uniform executors for every evaluation strategy.

Each ``run_*`` function takes the *original* query and a database and
returns an :class:`ExecutionResult` whose ``answers`` are projections
onto the original goal's free argument positions — so results of
different methods compare directly.  ``extras`` carries method-specific
measurements (magic-set size, counting-set size, pointer-table rows and
triples, answer-state counts) used by the benchmark harness.

Strategies
----------

``naive``              semi-naive evaluation of the original program,
                       goal filter applied afterwards (no binding
                       propagation — the paper's worst baseline).
``magic``              magic-set rewriting + semi-naive engine.
``sup_magic``          supplementary magic sets [6] (prefixes
                       materialized once).
``qsq``                top-down query-subquery evaluation (the memoing
                       family's direct formulation).
``classical_counting`` classical counting (Example 1); raises
                       :class:`CountingDivergenceError` on cyclic data.
``encoded_counting``   the [15] integer-encoded rule log (historical;
                       exponential value growth).
``extended_counting``  Algorithm 1 (list path arguments) + generic
                       engine; requires an acyclic left graph (more
                       precisely: no cycle through a pushing rule).
``reduced_counting``   Algorithm 1 + Algorithm 3 reduction; safe on
                       any data when the path argument disappears.
``pointer_counting``   §3.4 pointer implementation (dedicated
                       evaluator); requires an acyclic left graph.
``cyclic_counting``    Algorithm 2 (dedicated evaluator); applies to
                       cyclic and acyclic data alike.
``magic_counting``     the [16] hybrid: counting on the non-recurring
                       part, magic on the recurring part.
``parallel``           data-parallel sharded semi-naive fixpoint over a
                       multiprocess worker pool (:mod:`repro.parallel`);
                       linear positive programs only.
"""

import time

from ..datalog.rules import Query
from ..engine.database import Database
from ..engine.fixpoint import goal_filter, project_free
from ..engine.instrumentation import EvalStats
from ..engine.seminaive import SemiNaiveEngine
from ..errors import CountingDivergenceError, EvaluationError
from ..graph.dfs import classify_arcs
from ..rewriting.adornment import adorn_query
from ..rewriting.canonical import canonicalize_clique, query_constants
from ..rewriting.counting import classical_counting_rewrite
from ..rewriting.extended import extended_counting_rewrite
from ..rewriting.magic import magic_rewrite, magic_set_size
from ..rewriting.reduction import reduce_rewriting
from ..rewriting.support import goal_clique_of
from .counting_engine import CountingEngine


class ExecutionResult:
    """Answers plus measurements for one strategy run."""

    __slots__ = ("method", "answers", "stats", "extras", "rewriting",
                 "elapsed")

    def __init__(self, method, answers, stats, extras=None, rewriting=None,
                 elapsed=0.0):
        self.method = method
        self.answers = frozenset(answers)
        self.stats = stats
        self.extras = dict(extras or {})
        self.rewriting = rewriting
        #: Wall-clock seconds of the run (rewriting + evaluation).
        self.elapsed = elapsed

    @property
    def profile(self):
        """Per-rule (label, seconds, calls, derived) rows, slowest first.

        Collected by the engine's batched join path; empty for the
        dedicated evaluators that do not run whole rules through
        :class:`~repro.engine.seminaive.SemiNaiveEngine`.
        """
        return self.stats.profile_table()

    def __repr__(self):
        return "ExecutionResult(%s, %d answers, work=%d)" % (
            self.method, len(self.answers), self.stats.total_work
        )


def _run_engine(query, db, stats, max_iterations=None, budget=None):
    engine = SemiNaiveEngine(
        query.program, db, stats=stats, max_iterations=max_iterations,
        budget=budget,
    )
    derived = engine.run()
    goal = query.goal
    relation = engine.relation(goal.key)
    tuples = set(goal_filter(goal, relation))
    return project_free(goal, tuples), derived


def _relation_sizes(derived, keys):
    return sum(len(derived[key]) for key in keys if key in derived)


def run_naive(query, db, budget=None):
    """Evaluate the original program without binding propagation."""
    stats = EvalStats()
    started = time.perf_counter()
    answers, derived = _run_engine(query, db, stats, budget=budget)
    elapsed = time.perf_counter() - started
    extras = {
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("naive", answers, stats, extras,
                           elapsed=elapsed)


def run_magic(query, db, budget=None):
    """Magic-set rewriting followed by semi-naive evaluation."""
    stats = EvalStats()
    started = time.perf_counter()
    rewriting = magic_rewrite(query)
    answers, derived = _run_engine(rewriting.query, db, stats,
                                   budget=budget)
    elapsed = time.perf_counter() - started
    extras = {
        "magic_set_size": magic_set_size(derived, rewriting),
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("magic", answers, stats, extras, rewriting,
                           elapsed)


def run_sup_magic(query, db, budget=None):
    """Supplementary magic sets: prefixes materialized once."""
    from ..rewriting.supplementary import supplementary_magic_rewrite

    stats = EvalStats()
    started = time.perf_counter()
    rewriting = supplementary_magic_rewrite(query)
    answers, derived = _run_engine(rewriting.query, db, stats,
                                   budget=budget)
    elapsed = time.perf_counter() - started
    extras = {
        "sup_facts": sum(
            len(rel) for key, rel in derived.items()
            if key[0].startswith("sup_")
        ),
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("sup_magic", answers, stats, extras,
                           rewriting, elapsed)


def _divergence_bound(db):
    """Iteration bound for the classical counting clique.

    On acyclic data the counting index never exceeds the number of
    database constants, so a fixpoint running longer than that has hit
    a cycle.  The cap counts every round of a clique — the initial
    naive round included — hence the extra slack beyond the constant
    count.
    """
    return len(db.constants()) + 3


def run_classical_counting(query, db, budget=None):
    """Classical counting; divergence-guarded for cyclic data."""
    stats = EvalStats()
    started = time.perf_counter()
    rewriting = classical_counting_rewrite(query)
    try:
        answers, derived = _run_engine(
            rewriting.query, db, stats,
            max_iterations=_divergence_bound(db),
            budget=budget,
        )
    except EvaluationError as exc:
        raise CountingDivergenceError(
            "classical counting diverged (cyclic left-part relation?): %s"
            % exc
        ) from exc
    elapsed = time.perf_counter() - started
    extras = {
        "counting_set_size": _relation_sizes(
            derived, [rewriting.counting_pred]
        ),
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("classical_counting", answers, stats, extras,
                           rewriting, elapsed)


def run_encoded_counting(query, db, budget=None):
    """The [15] integer-encoded counting method (historical baseline).

    The rule log rides a single integer; divergence-guarded like the
    classical method.  ``extras`` reports the largest encoded value's
    bit length — the exponential growth §3.4 criticizes.
    """
    from ..rewriting.encoded import encoded_counting_rewrite

    stats = EvalStats()
    started = time.perf_counter()
    rewriting = encoded_counting_rewrite(query)
    try:
        answers, derived = _run_engine(
            rewriting.query, db, stats,
            max_iterations=_divergence_bound(db),
            budget=budget,
        )
    except EvaluationError as exc:
        raise CountingDivergenceError(
            "encoded counting diverged (cyclic left-part relation?): %s"
            % exc
        ) from exc
    elapsed = time.perf_counter() - started
    counting = derived.get(rewriting.counting_pred)
    max_bits = 0
    size = 0
    if counting is not None:
        size = len(counting)
        for row in counting:
            max_bits = max(max_bits, int(row[-1]).bit_length())
    extras = {
        "counting_set_size": size,
        "max_index_bits": max_bits,
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("encoded_counting", answers, stats, extras,
                           rewriting, elapsed)


def _check_left_graph_acyclic(adorned, db, stats, method):
    """Raise if the path argument would grow without bound.

    The list-based programs diverge exactly when the reachable left
    graph contains a cycle through a *pushing* arc — one generated by a
    rule that is neither left- nor right-linear shaped (those rules are
    the ones extending the path argument).
    """
    clique, support_rules = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    get_relation = _support_resolver(adorned, support_rules, db, stats)
    check_pushing_cycles(
        canonical, adorned.goal.key, query_constants(adorned.goal),
        get_relation, method,
    )


def check_pushing_cycles(canonical, goal_key, source_values, get_relation,
                         method):
    """Core of the divergence check, parameterized on prepared artifacts.

    The prepared-query layer (:mod:`repro.exec.prepared`) canonicalizes
    the clique once per query form and re-runs only this data-dependent
    classification per binding.
    """
    from ..graph.properties import strongly_connected_components
    from ..rewriting.linearity import GENERAL, rule_shape

    engine = CountingEngine(
        canonical,
        goal_key,
        tuple(source_values),
        get_relation,
        stats=EvalStats(),
    )
    source = (goal_key, tuple(source_values))
    classification = classify_arcs(source, engine._successors)
    if classification.is_acyclic():
        return
    pushing = {
        rule.label
        for rule in canonical.recursive_rules
        if rule_shape(rule) == GENERAL
    }
    adjacency = {}
    for arc in classification.arcs:
        adjacency.setdefault(arc.source, set()).add(arc.target)
    sccs = strongly_connected_components(adjacency)
    for arc in classification.arcs:
        label = arc.label[0]
        if label not in pushing:
            continue
        if sccs.get(arc.source) == sccs.get(arc.target):
            raise CountingDivergenceError(
                "%s: the left graph has a cycle through pushing rule %s; "
                "the path argument would grow without bound"
                % (method, label)
            )


def _support_resolver(adorned, support_rules, db, stats, budget=None):
    """Materialize support (lower-clique) rules over the database.

    Returns a lookup ``key -> relation`` that consults the materialized
    support relations first and the database second.
    """
    if not support_rules:
        return db.get
    from ..datalog.rules import Program

    engine = SemiNaiveEngine(Program(support_rules), db, stats=stats,
                             budget=budget)
    engine.run()
    return engine.relation


def run_extended_counting(query, db, check_acyclic=True, budget=None):
    """Algorithm 1 (list path arguments) on the generic engine."""
    stats = EvalStats()
    started = time.perf_counter()
    rewriting = extended_counting_rewrite(query)
    if check_acyclic:
        _check_left_graph_acyclic(
            rewriting.adorned, db, stats, "extended counting"
        )
    answers, derived = _run_engine(rewriting.query, db, stats,
                                   budget=budget)
    elapsed = time.perf_counter() - started
    extras = {
        "counting_set_size": _relation_sizes(
            derived, list(rewriting.counting_preds.values())
        ),
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("extended_counting", answers, stats, extras,
                           rewriting, elapsed)


def run_reduced_counting(query, db, check_acyclic=True, budget=None):
    """Algorithm 1 followed by the Algorithm 3 reduction."""
    stats = EvalStats()
    started = time.perf_counter()
    rewriting = reduce_rewriting(extended_counting_rewrite(query))
    path_free = (
        rewriting.path_deleted_counting and rewriting.path_deleted_answer
    )
    if check_acyclic and not path_free:
        # A surviving path argument still grows along cycles.
        _check_left_graph_acyclic(
            rewriting.source.adorned, db, stats, "reduced counting"
        )
    answers, derived = _run_engine(rewriting.query, db, stats,
                                   budget=budget)
    elapsed = time.perf_counter() - started
    extras = {
        "counting_set_size": _relation_sizes(
            derived, list(rewriting.source.counting_preds.values())
        ) + _relation_sizes(
            derived,
            [
                (name, arity - 1)
                for name, arity in rewriting.source.counting_preds.values()
            ],
        ),
        "path_deleted": path_free,
        "derived_facts": sum(len(rel) for rel in derived.values()),
    }
    return ExecutionResult("reduced_counting", answers, stats, extras,
                           rewriting, elapsed)


def _counting_engine_for(query, db, stats, require_acyclic,
                         budget=None):
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    clique, support_rules = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    get_relation = _support_resolver(adorned, support_rules, db, stats,
                                     budget=budget)
    return CountingEngine(
        canonical,
        adorned.goal.key,
        query_constants(adorned.goal),
        get_relation,
        stats=stats,
        require_acyclic=require_acyclic,
        budget=budget,
    )


def run_pointer_counting(query, db, budget=None):
    """§3.4 pointer-based implementation (acyclic databases)."""
    stats = EvalStats()
    started = time.perf_counter()
    engine = _counting_engine_for(query, db, stats, require_acyclic=True,
                                  budget=budget)
    answers = engine.run()
    elapsed = time.perf_counter() - started
    extras = {
        "counting_rows": len(engine.table),
        "counting_triples": engine.table.triple_count,
        "answer_states": engine.state_count,
        "max_frontier": engine.max_frontier,
    }
    return ExecutionResult("pointer_counting", answers, stats, extras,
                           elapsed=elapsed)


def run_cyclic_counting(query, db, budget=None):
    """Algorithm 2: extended counting for arbitrary (cyclic) data."""
    stats = EvalStats()
    started = time.perf_counter()
    engine = _counting_engine_for(query, db, stats,
                                  require_acyclic=False, budget=budget)
    answers = engine.run()
    elapsed = time.perf_counter() - started
    extras = {
        "counting_rows": len(engine.table),
        "counting_triples": engine.table.triple_count,
        "back_arcs": engine.table.back_arc_count,
        "answer_states": engine.state_count,
        "max_frontier": engine.max_frontier,
    }
    return ExecutionResult("cyclic_counting", answers, stats, extras,
                           elapsed=elapsed)


def run_magic_counting(query, db, budget=None):
    """The magic-counting hybrid [16]: counting on the non-recurring
    part of the left graph, magic sets on the recurring part."""
    from ..rewriting.canonical import canonicalize_clique
    from .magic_counting import MagicCountingEngine

    stats = EvalStats()
    started = time.perf_counter()
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    clique, support_rules = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    get_relation = _support_resolver(adorned, support_rules, db, stats,
                                     budget=budget)
    engine = MagicCountingEngine(
        canonical,
        adorned.goal.key,
        query_constants(adorned.goal),
        get_relation,
        stats=stats,
        budget=budget,
    )
    answers = engine.run()
    elapsed = time.perf_counter() - started
    extras = {
        "recurring_nodes": len(engine.recurring),
        "counting_rows": 0 if engine.table is None else len(engine.table),
        "answer_states": engine.state_count,
    }
    return ExecutionResult("magic_counting", answers, stats, extras,
                           elapsed=elapsed)


def run_parallel(query, db, budget=None, workers=2, inline=False,
                 plan=None, recovery=None):
    """Data-parallel sharded fixpoint over a multiprocess worker pool.

    Plans with :func:`~repro.parallel.plan.plan_partitions`, executes
    with :class:`~repro.parallel.executor.ParallelEngine`; see
    :mod:`repro.parallel`.  ``workers=0`` (or ``inline=True``) runs the
    same engine serially in-process — the baseline whose answers *and*
    merged counters every multiprocess run must reproduce.

    ``recovery`` selects the self-healing behaviour: a
    :class:`~repro.parallel.supervisor.RecoveryPolicy`, a mode string,
    or ``None`` for the default (shard reassignment).  Under
    ``"reassign"``/``"respawn"`` worker death and hangs are repaired in
    place from the last barrier checkpoint; only under ``"serial"`` (or
    once the repair allowance is spent) do failures surface as typed
    :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.WorkerHungError` /
    :class:`~repro.errors.RecoveryExhaustedError`, which a fallback
    chain degrades past instead of hanging.
    """
    from ..parallel import ParallelEngine

    stats = EvalStats()
    started = time.perf_counter()
    engine = ParallelEngine(
        query, db, workers=workers, stats=stats, budget=budget,
        plan=plan, inline=inline, recovery=recovery,
    )
    engine.run()
    elapsed = time.perf_counter() - started
    return ExecutionResult("parallel", engine.answers, stats,
                           engine.extras(), elapsed=elapsed)


def run_qsq(query, db, budget=None):
    """Top-down query-subquery evaluation (the memoing family's
    direct formulation; work profile tracks magic sets)."""
    from .qsq import qsq_evaluate

    stats = EvalStats()
    started = time.perf_counter()
    answers, engine = qsq_evaluate(query, db, stats=stats,
                                   budget=budget)
    elapsed = time.perf_counter() - started
    extras = {
        "subqueries": engine.subquery_count(),
        "memo_facts": sum(len(rel) for rel in engine.answers.values()),
    }
    return ExecutionResult("qsq", answers, stats, extras,
                           elapsed=elapsed)


#: Registry used by the benchmark harness and the optimizer pipeline.
STRATEGIES = {
    "naive": run_naive,
    "magic": run_magic,
    "classical_counting": run_classical_counting,
    "extended_counting": run_extended_counting,
    "reduced_counting": run_reduced_counting,
    "pointer_counting": run_pointer_counting,
    "cyclic_counting": run_cyclic_counting,
    "magic_counting": run_magic_counting,
    "sup_magic": run_sup_magic,
    "encoded_counting": run_encoded_counting,
    "qsq": run_qsq,
    "parallel": run_parallel,
}


def run_strategy(name, query, db, budget=None, **options):
    """Run one registered strategy by name.

    ``budget`` is an optional
    :class:`~repro.engine.guard.ResourceBudget` threaded through to the
    underlying engines; a budget firing surfaces as a typed
    :class:`~repro.errors.BudgetExceededError` carrying partial stats.
    Extra keyword ``options`` are forwarded to the strategy runner —
    the ``parallel`` strategy takes ``workers=N`` this way.
    """
    try:
        runner = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            "unknown strategy %r; available: %s"
            % (name, ", ".join(sorted(STRATEGIES)))
        ) from None
    if not isinstance(query, Query):
        raise TypeError("expected a Query")
    if not isinstance(db, Database):
        raise TypeError("expected a Database")
    if budget is None:
        return runner(query, db, **options)
    return runner(query, db, budget=budget, **options)
