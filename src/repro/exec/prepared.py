"""Prepared queries: rewrite once, evaluate many bindings.

Interactive and benchmark workloads in the paper's setting re-run the
same query *form* — ``sg(c, Y)?`` — for a stream of different constants
``c``.  Every ``run_strategy`` call repeats work that does not depend on
``c`` at all: adornment, the method-specific rewriting, rule
compilation, support-rule materialization.  :class:`PreparedQuery` does
that work once and keeps three layers of reusable state:

1. **Rewriting reuse.**  The bound goal positions are replaced by
   :class:`FormParameter` sentinels — placeholder constants compared by
   identity, so they can never collide with real program constants —
   and the strategy's rewriting runs once over the sentinel query.  A
   per-binding run substitutes real constants into the (few) rules that
   mention a sentinel; all other rules are reused as the *same objects*,
   which keeps the compiled-rule cache (keyed by ``id``) hot.  For the
   dedicated counting evaluators the canonical clique is
   constant-independent by construction, so only the source values
   change between runs.
2. **Answer caching.**  With an :class:`~repro.exec.cache.AnswerCache`
   attached, results are memoized under ``(query form, constants,
   epoch snapshot)``.  The epoch snapshot covers every base relation
   the rewritten program reads (see
   :meth:`~repro.engine.database.Database.epochs`), so updating the
   database silently invalidates exactly the dependent entries.
3. **Counting-set memoization.**  With a
   :class:`~repro.exec.cache.CountingTableStore` attached, the
   pointer/cyclic evaluators skip phase 1 (the left-graph DFS and
   ahead-arc construction) when the source node was already explored
   under the current epochs.

Answers are always byte-identical to a cold ``run_strategy`` call on
the equivalent bound query (:meth:`PreparedQuery.bind` builds that
query for comparison).
"""

import time
import weakref

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Program, Query, Rule
from ..datalog.terms import Compound, Constant
from ..engine.compile import compiled_rule
from ..engine.fixpoint import goal_filter, project_free
from ..engine.instrumentation import EvalStats
from ..engine.seminaive import SemiNaiveEngine
from ..errors import (
    CountingDivergenceError,
    EvaluationError,
    NotApplicableError,
)
from ..rewriting.adornment import adorn_query
from ..rewriting.canonical import canonicalize_clique
from ..rewriting.counting import classical_counting_rewrite
from ..rewriting.encoded import encoded_counting_rewrite
from ..rewriting.extended import extended_counting_rewrite
from ..rewriting.magic import magic_rewrite
from ..rewriting.pipeline import optimize
from ..rewriting.reduction import reduce_rewriting
from ..rewriting.supplementary import supplementary_magic_rewrite
from ..rewriting.support import goal_clique_of
from .counting_engine import CountingEngine
from .strategies import (
    ExecutionResult,
    _check_left_graph_acyclic,
    _divergence_bound,
    _support_resolver,
    check_pushing_cycles,
    run_strategy,
)


def _reduced_rewrite(query):
    return reduce_rewriting(extended_counting_rewrite(query))


#: Strategies whose rewritten program runs on the generic semi-naive
#: engine; the rewriting is constant-independent except for seed facts.
ENGINE_REWRITES = {
    "magic": magic_rewrite,
    "sup_magic": supplementary_magic_rewrite,
    "classical_counting": classical_counting_rewrite,
    "encoded_counting": encoded_counting_rewrite,
    "extended_counting": extended_counting_rewrite,
    "reduced_counting": _reduced_rewrite,
}

#: Strategies served by the dedicated counting evaluators.
COUNTING_METHODS = ("pointer_counting", "cyclic_counting", "magic_counting")

#: Engine-family strategies that need the divergence iteration guard.
GUARDED_METHODS = ("classical_counting", "encoded_counting")


class FormParameter:
    """Placeholder constant standing for one bound goal position.

    Compared and hashed by identity (the ``object`` default), so a
    sentinel can never be confused with a program constant — not even
    with another sentinel of the same position from a different
    prepared query.
    """

    __slots__ = ("position",)

    def __init__(self, position):
        self.position = position

    def __repr__(self):
        return "<?%d>" % self.position


# -- sentinel detection and substitution over terms/literals/rules -----

def _term_mentions(term):
    if isinstance(term, Constant):
        return isinstance(term.value, FormParameter)
    if isinstance(term, Compound):
        return any(_term_mentions(arg) for arg in term.args)
    return False


def _literal_mentions(literal):
    if isinstance(literal, Atom):
        return any(_term_mentions(arg) for arg in literal.args)
    if isinstance(literal, Negation):
        return any(_term_mentions(arg) for arg in literal.atom.args)
    if isinstance(literal, Comparison):
        return _term_mentions(literal.left) or _term_mentions(literal.right)
    return False


def _rule_mentions(rule):
    return any(_term_mentions(arg) for arg in rule.head.args) or any(
        _literal_mentions(lit) for lit in rule.body
    )


def _substitute_term(term, mapping):
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, FormParameter):
            return Constant(mapping[value])
        return term
    if isinstance(term, Compound):
        return Compound(
            term.functor,
            tuple(_substitute_term(arg, mapping) for arg in term.args),
        )
    return term


def _substitute_atom(atom, mapping):
    return Atom(
        atom.pred, tuple(_substitute_term(arg, mapping) for arg in atom.args)
    )


def _substitute_literal(literal, mapping):
    if isinstance(literal, Atom):
        return _substitute_atom(literal, mapping)
    if isinstance(literal, Negation):
        return Negation(_substitute_atom(literal.atom, mapping))
    return Comparison(
        literal.op,
        _substitute_term(literal.left, mapping),
        _substitute_term(literal.right, mapping),
    )


def _substitute_rule(rule, mapping):
    return Rule(
        _substitute_atom(rule.head, mapping),
        tuple(_substitute_literal(lit, mapping) for lit in rule.body),
        label=rule.label,
    )


class _ScopedTableStore:
    """Adapter presenting a :class:`CountingTableStore` to one engine run.

    The engine keys entries by source node only; the adapter widens the
    key with the query form and carries the epoch snapshot the store
    validates against.
    """

    __slots__ = ("store", "form", "epochs")

    def __init__(self, store, form, epochs):
        self.store = store
        self.form = form
        self.epochs = epochs

    def get(self, node):
        return self.store.get((self.form, node), self.epochs)

    def put(self, node, table):
        self.store.put((self.form, node), self.epochs, table)


class PreparedQuery:
    """A query form prepared for repeated evaluation.

    Parameters
    ----------
    query : :class:`~repro.datalog.rules.Query`
        The query whose *form* (goal predicate, adornment, program) is
        prepared.  Its constants become the default binding.
    db : optional :class:`~repro.engine.database.Database`
        Used by ``method='auto'`` selection only; runs name their
        database explicitly.
    method : strategy name or ``'auto'``
        Same contract as :func:`repro.rewriting.pipeline.optimize`.
    cache : optional :class:`~repro.exec.cache.AnswerCache`
        Shared answer memo; hits skip evaluation entirely.
    counting_store : optional :class:`~repro.exec.cache.CountingTableStore`
        Shared counting-set memo for the pointer/cyclic evaluators.
    """

    def __init__(self, query, db=None, method="auto", cache=None,
                 counting_store=None):
        plan = optimize(query, db, method=method)
        self.method = plan.method
        #: The plan's query — may differ from the input when the
        #: optimizer linearized square rules; it is the template every
        #: binding re-instantiates.
        self.template = plan.query
        self.plan = plan
        self.cache = cache
        self.counting_store = counting_store
        goal = self.template.goal
        self.bound_positions = tuple(
            i for i, arg in enumerate(goal.args)
            if isinstance(arg, Constant)
        )
        self.default_constants = tuple(
            goal.args[i].value for i in self.bound_positions
        )
        program = self.template.program
        reads = set(program.body_predicates() - program.head_predicates())
        if goal.key not in program.head_predicates():
            reads.add(goal.key)
        #: Base relations the rewritten program may read — the epoch
        #: snapshot over these keys is the invalidation fingerprint.
        self.read_keys = tuple(sorted(reads))
        self._params = tuple(FormParameter(i) for i in self.bound_positions)
        sentinel_args = list(goal.args)
        for param, pos in zip(self._params, self.bound_positions):
            sentinel_args[pos] = Constant(param)
        self._sentinel_query = Query(
            goal.with_args(tuple(sentinel_args)), program
        )
        #: Structural identity of the query form; shared caches use it
        #: so two prepared instances of the same form exchange entries.
        self._form_key = (
            goal.key, self.template.adornment(), self.method, program.rules
        )
        self._runs = 0
        self._family = "fallback"
        self._compiled = {}
        self._prepare()

    # -- one-time preparation ------------------------------------------

    def _prepare(self):
        method = self.method
        if method == "naive":
            self._family = "naive"
            self._naive_entry = None
            for rule in self.template.program.rules:
                if not rule.is_fact():
                    self._compiled[id(rule)] = compiled_rule(rule)
            return
        if method in ENGINE_REWRITES:
            try:
                rewriting = ENGINE_REWRITES[method](self._sentinel_query)
            except NotApplicableError:
                # Leave family='fallback': the per-run path reports the
                # same error a cold run would.
                return
            self._family = "engine"
            self.rewriting = rewriting
            self._exec_goal = rewriting.query.goal
            self._goal_parametric = any(
                _term_mentions(arg) for arg in self._exec_goal.args
            )
            #: (rule, mentions-sentinel) in program order; fixed rules
            #: are reused per run as the same objects so the shared
            #: compiled cache (keyed by id) stays hot.
            self._rule_slots = tuple(
                (rule, _rule_mentions(rule))
                for rule in rewriting.query.program.rules
            )
            for rule, parametric in self._rule_slots:
                if not parametric and not rule.is_fact():
                    self._compiled[id(rule)] = compiled_rule(rule)
            self._check_canonical = None
            self._check_entry = None
            self._path_free = True
            if method == "extended_counting":
                self._path_free = False
                self._prepare_check(rewriting.adorned)
            elif method == "reduced_counting":
                self._path_free = (
                    rewriting.path_deleted_counting
                    and rewriting.path_deleted_answer
                )
                if not self._path_free:
                    self._prepare_check(rewriting.source.adorned)
            return
        if method in COUNTING_METHODS:
            try:
                adorned = adorn_query(self._sentinel_query)
                clique, support_rules = goal_clique_of(adorned)
                canonical = canonicalize_clique(clique, adorned)
            except NotApplicableError:
                return
            self._family = "counting"
            self._adorned = adorned
            self._goal_key = adorned.goal.key
            self._support_rules = support_rules
            self._canonical = canonical
            #: Shared compiled-BoundQuery cache for the dedicated
            #: evaluators (keyed on canonical rule identity, so it is
            #: valid across bindings and databases alike).
            self._bound_query_cache = {}
            self._support_entry = None
            return
        # qsq and any unknown method: prepare nothing, delegate per run.

    def _prepare_check(self, adorned):
        try:
            clique, support_rules = goal_clique_of(adorned)
            self._check_canonical = canonicalize_clique(clique, adorned)
        except NotApplicableError:
            self._check_canonical = None
            return
        self._check_support = support_rules
        self._check_goal_key = adorned.goal.key

    # -- binding helpers -----------------------------------------------

    def _normalize(self, constants, db=None):
        if constants is None:
            constants = self.default_constants
        constants = tuple(constants)
        if len(constants) != len(self.bound_positions):
            raise ValueError(
                "query form binds %d position(s), got %d constant(s)"
                % (len(self.bound_positions), len(constants))
            )
        if db is not None:
            constants = db.intern_pool.intern_row(constants)
        return constants

    def _bound_goal(self, constants):
        goal = self.template.goal
        args = list(goal.args)
        for pos, value in zip(self.bound_positions, constants):
            args[pos] = Constant(value)
        return goal.with_args(tuple(args))

    def bind(self, constants=None):
        """The plain bound :class:`Query` for ``constants``.

        This is exactly what a cold ``run_strategy(prepared.method,
        prepared.bind(c), db)`` call evaluates — benchmarks use it as
        the uncached baseline.
        """
        return Query(
            self._bound_goal(self._normalize(constants)),
            self.template.program,
        )

    def size_bound(self, db):
        """Static work estimate for this form against ``db``.

        The adornment bounds the answer space — every *free* goal
        position multiplies the tuples a run may have to touch — and
        the EDB sizes of ``read_keys`` bound the facts any evaluation
        can read, so the product ``sum(|R| for R in read_keys) * free
        positions`` is a crude but monotone size bound in the spirit of
        the size-bound-adorned pricing literature.  The tenancy layer's
        :class:`~repro.tenancy.forms.FormRegistry` buckets it into cost
        classes; it is an *ordering* signal (light vs heavy forms on the
        same database), never a cardinality estimate.
        """
        edb = sum(len(db.get(key)) for key in self.read_keys)
        frees = len(self.template.goal.args) - len(self.bound_positions)
        return max(1, edb) * max(1, frees)

    # -- evaluation ----------------------------------------------------

    def run(self, constants=None, db=None, budget=None, workers=None,
            recovery=None):
        """Evaluate the form for one binding; returns an
        :class:`~repro.exec.strategies.ExecutionResult`.

        ``stats.cache_hits`` / ``stats.cache_misses`` record the answer
        cache's verdict; ``stats.prepare_reuse`` is 1 when this run
        reused the prepared rewriting instead of building it.

        ``workers`` (>= 2) asks for data-parallel evaluation: the
        pointer/cyclic counting family parallelizes phase 1 of the
        counting-set build, every other family first attempts the
        sharded-fixpoint ``parallel`` strategy.  Either path degrades
        to the prepared serial evaluation on any worker or planning
        failure — ``extras["parallel_fallback"]`` then names the error
        class.  ``recovery`` tunes the sharded stage's self-healing
        (a :class:`~repro.parallel.supervisor.RecoveryPolicy` or mode
        string; default shard reassignment), so a worker crash is
        repaired in place before this serial fallback is considered.
        Answers are byte-identical either way, so the answer cache is
        keyed without ``workers`` or ``recovery``.
        """
        if db is None:
            raise TypeError("PreparedQuery.run() requires a database")
        constants = self._normalize(constants, db)
        started = time.perf_counter()
        stats = EvalStats()
        key = None
        if self.cache is not None:
            key = (self._form_key, constants, db.epochs(self.read_keys))
            # Entries are validated by lineage, not object identity:
            # snapshots of the same database — and a durably *recovered*
            # database, which restores its lineage from disk — share the
            # token, so a warm cache survives recovery; an unrelated
            # database that merely has equal epochs does not match.
            cached = self.cache.get(
                key, valid=lambda entry: entry[0] == db.lineage
            )
            if cached is not None:
                stats.cache_hits = 1
                extras = dict(cached[2])
                extras["cache_hit"] = True
                return ExecutionResult(
                    self.method, cached[1], stats, extras,
                    elapsed=time.perf_counter() - started,
                )
        stats.cache_misses = 1
        if self._runs:
            stats.prepare_reuse = 1
        self._runs += 1
        result = self._execute(constants, db, stats, budget, started,
                               workers=workers, recovery=recovery)
        if self.cache is not None:
            extras = {
                name: value
                for name, value in result.extras.items()
                if name != "cache_hit"
            }
            self.cache.put(key, (db.lineage, result.answers, extras))
        return result

    def run_batch(self, bindings, db=None, budget=None, workers=None,
                  recovery=None):
        """Evaluate many bindings; results in the order of ``bindings``."""
        return [
            self.run(binding, db=db, budget=budget, workers=workers,
                     recovery=recovery)
            for binding in bindings
        ]

    def _execute(self, constants, db, stats, budget, started,
                 workers=None, recovery=None):
        family = self._family
        parallel_fallback = None
        phase1_parallel = (
            family == "counting" and self.method != "magic_counting"
        )
        if workers is not None and workers >= 2 and not phase1_parallel:
            # Sharded-fixpoint attempt; serial families below are the
            # fallback.  Budget errors propagate — they describe the
            # caller's limits, and a serial retry cannot beat them.
            try:
                result = run_strategy(
                    "parallel", self.bind(constants), db,
                    budget=budget, workers=workers, recovery=recovery,
                )
            except (NotApplicableError, EvaluationError) as exc:
                parallel_fallback = type(exc).__name__
            else:
                result.stats.cache_misses += stats.cache_misses
                result.stats.prepare_reuse += stats.prepare_reuse
                result.extras["prepared"] = False
                result.extras["cache_hit"] = False
                return result
        if family == "fallback":
            result = run_strategy(
                self.method, self.bind(constants), db, budget=budget
            )
            result.stats.cache_misses += stats.cache_misses
            result.stats.prepare_reuse += stats.prepare_reuse
            result.extras["prepared"] = False
            result.extras["cache_hit"] = False
            if parallel_fallback is not None:
                result.extras["parallel_fallback"] = parallel_fallback
            return result
        if family == "naive":
            answers, extras = self._run_naive(constants, db, stats, budget)
        elif family == "engine":
            answers, extras = self._run_engine(constants, db, stats, budget)
        else:
            answers, extras = self._run_counting(
                constants, db, stats, budget, workers=workers
            )
        if parallel_fallback is not None:
            extras["parallel_fallback"] = parallel_fallback
        extras["prepared"] = True
        extras["cache_hit"] = False
        return ExecutionResult(
            self.method, answers, stats, extras,
            elapsed=time.perf_counter() - started,
        )

    def _run_naive(self, constants, db, stats, budget):
        goal = self._bound_goal(constants)
        epochs = db.epochs(self.read_keys)
        entry = self._naive_entry
        if (
            entry is not None
            and entry[0]() is db
            and entry[1] == epochs
        ):
            relation = entry[2]
        else:
            # The original program never mentions the query constants,
            # so one evaluation serves every binding until the database
            # moves.
            engine = SemiNaiveEngine(
                self.template.program, db, stats=stats, budget=budget,
                compiled_cache=dict(self._compiled),
            )
            engine.run()
            relation = engine.relation(goal.key)
            self._naive_entry = (weakref.ref(db), epochs, relation)
        tuples = set(goal_filter(goal, relation))
        answers = project_free(goal, tuples)
        extras = {"derived_facts": len(relation)}
        return answers, extras

    def _run_engine(self, constants, db, stats, budget):
        method = self.method
        if not self._path_free:
            self._run_check(constants, db, stats, budget)
        mapping = dict(zip(self._params, constants))
        rules = tuple(
            _substitute_rule(rule, mapping) if parametric else rule
            for rule, parametric in self._rule_slots
        )
        goal = (
            _substitute_atom(self._exec_goal, mapping)
            if self._goal_parametric
            else self._exec_goal
        )
        max_iterations = None
        if method in GUARDED_METHODS:
            max_iterations = _divergence_bound(db)
        # Copy the shared compiled cache so entries for this run's
        # substituted seed rules do not pile up in it.
        engine = SemiNaiveEngine(
            Program(rules), db, stats=stats,
            max_iterations=max_iterations, budget=budget,
            compiled_cache=dict(self._compiled),
        )
        try:
            derived = engine.run()
        except EvaluationError as exc:
            if method in GUARDED_METHODS:
                raise CountingDivergenceError(
                    "%s diverged (cyclic left-part relation?): %s"
                    % (method, exc)
                ) from exc
            raise
        relation = engine.relation(goal.key)
        tuples = set(goal_filter(goal, relation))
        answers = project_free(goal, tuples)
        extras = {
            "derived_facts": sum(len(rel) for rel in derived.values()),
        }
        return answers, extras

    def _run_check(self, constants, db, stats, budget):
        """Per-binding divergence guard for the list-based methods."""
        label = self.method.replace("_", " ")
        if self._check_canonical is None:
            _check_left_graph_acyclic(
                adorn_query(self.bind(constants)), db, stats, label
            )
            return
        epochs = db.epochs(self.read_keys)
        entry = self._check_entry
        if (
            entry is not None
            and entry[0]() is db
            and entry[1] == epochs
        ):
            resolver = entry[2]
        else:
            resolver = _support_resolver(
                None, self._check_support, db, stats, budget=budget
            )
            self._check_entry = (weakref.ref(db), epochs, resolver)
        check_pushing_cycles(
            self._check_canonical, self._check_goal_key, constants,
            resolver, label,
        )

    def _run_counting(self, constants, db, stats, budget, workers=None):
        epochs = db.epochs(self.read_keys)
        entry = self._support_entry
        if (
            entry is not None
            and entry[0]() is db
            and entry[1] == epochs
        ):
            resolver = entry[2]
        else:
            resolver = _support_resolver(
                self._adorned, self._support_rules, db, stats,
                budget=budget,
            )
            self._support_entry = (weakref.ref(db), epochs, resolver)
        method = self.method
        if method == "magic_counting":
            from .magic_counting import MagicCountingEngine

            engine = MagicCountingEngine(
                self._canonical, self._goal_key, constants, resolver,
                stats=stats, budget=budget,
            )
            answers = engine.run()
            extras = {
                "recurring_nodes": len(engine.recurring),
                "counting_rows": (
                    0 if engine.table is None else len(engine.table)
                ),
                "answer_states": engine.state_count,
            }
            return answers, extras
        store = None
        if self.counting_store is not None:
            store = _ScopedTableStore(
                self.counting_store, self._form_key, epochs
            )
        engine = CountingEngine(
            self._canonical, self._goal_key, constants, resolver,
            stats=stats,
            require_acyclic=(method == "pointer_counting"),
            budget=budget,
            query_cache=self._bound_query_cache,
            table_store=store,
        )
        parallel_fallback = None
        parallel_used = False
        if (
            workers is not None
            and workers >= 2
            and not self._support_rules  # support resolvers don't ship
            and (store is None
                 or store.get((self._goal_key, constants)) is None)
        ):
            from ..parallel.counting import parallel_successor_map

            try:
                engine.successor_resolver = parallel_successor_map(
                    engine, db, workers
                )
                parallel_used = True
            except EvaluationError as exc:
                parallel_fallback = type(exc).__name__
        answers = engine.run()
        extras = {
            "counting_rows": len(engine.table),
            "counting_triples": engine.table.triple_count,
            "answer_states": engine.state_count,
            "max_frontier": engine.max_frontier,
            "counting_table_reused": engine.table_reused,
        }
        if parallel_used:
            extras["parallel_phase1_workers"] = workers
        if parallel_fallback is not None:
            extras["parallel_fallback"] = parallel_fallback
        if method == "cyclic_counting":
            extras["back_arcs"] = engine.table.back_arc_count
        return answers, extras

    def __repr__(self):
        return "PreparedQuery(%s, %s, %d run(s))" % (
            self.template.goal.pred, self.method, self._runs
        )
