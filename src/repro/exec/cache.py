"""Bounded cross-query caches with epoch-based invalidation.

Two stores back the prepared-query layer (:mod:`repro.exec.prepared`):

* :class:`AnswerCache` — an LRU map from ``(query form, constants,
  epoch snapshot)`` to final answer sets.  Invalidation is *implicit*:
  the key embeds the mutation epochs of every base relation the
  rewritten program reads (see
  :meth:`~repro.engine.database.Database.epochs`), so a database update
  changes the key and stale entries simply stop matching.  They age out
  of the LRU instead of being hunted down.
* :class:`CountingTableStore` — an LRU map from a source node to the
  counting set built from it (phase 1 of the dedicated evaluators).
  Tables are validated *explicitly* against an epoch snapshot on
  lookup, because a stale table must never be extended — unlike answer
  entries, which are only ever returned whole or not at all.

Both caches are deliberately dumb containers: what goes into the key —
and therefore what "same query" means — is decided by the prepared
layer.

Concurrency: every public operation runs under a per-cache
:class:`threading.RLock`, so the LRU reorder + counter update of a
``get`` and the insert + eviction of a ``put`` are atomic with respect
to other threads — the serving layer (:mod:`repro.serve`) shares one
cache across its whole worker pool.  The invariant ``hits + misses ==
lookups`` holds under arbitrary contention; :meth:`assert_consistent`
checks it (tests hammer the caches from many threads and then call
it).  The :func:`repro.engine.faults.stall` checkpoint inside each
critical section lets the fault injector stretch lock hold times
deterministically, so lost-update bugs that need a long race window
become reproducible.
"""

import threading
from collections import OrderedDict

from ..engine.faults import stall as _stall


class AnswerCache:
    """Bounded LRU cache for final query answers.

    ``get`` accepts an optional ``valid`` predicate over the stored
    entry; an entry failing the predicate is dropped and counted as an
    invalidation plus a miss.  The prepared layer uses this to reject
    entries recorded against a different (dead or replaced)
    :class:`~repro.engine.database.Database` instance.
    """

    __slots__ = ("capacity", "_entries", "_lock", "lookups", "hits",
                 "misses", "evictions", "invalidations")

    def __init__(self, capacity=128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1, got %r"
                             % (capacity,))
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.RLock()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key, valid=None):
        with self._lock:
            _stall("cache")
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is not None and (valid is None or valid(entry)):
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            if entry is not None:
                del self._entries[key]
                self.invalidations += 1
            self.misses += 1
            return None

    def put(self, key, entry):
        with self._lock:
            _stall("cache")
            entries = self._entries
            if key in entries:
                entries[key] = entry
                entries.move_to_end(key)
                return
            entries[key] = entry
            if len(entries) > self.capacity:
                entries.popitem(last=False)
                self.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()

    def assert_consistent(self):
        """Check the counter/size invariants; raises AssertionError.

        ``hits + misses == lookups`` (every lookup got exactly one
        verdict) and the entry count never exceeds capacity.  Both must
        hold under arbitrary thread contention.
        """
        with self._lock:
            assert self.hits + self.misses == self.lookups, (
                "cache counters diverged: %d hits + %d misses != %d "
                "lookups" % (self.hits, self.misses, self.lookups)
            )
            assert len(self._entries) <= self.capacity, (
                "cache overflow: %d entries > capacity %d"
                % (len(self._entries), self.capacity)
            )

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when unused).

        Reads both counters under the lock: torn reads (``hits`` from
        before a concurrent lookup, ``misses`` from after) could
        otherwise report a rate over or under the true value.
        """
        with self._lock:
            total = self.hits + self.misses
            return 0.0 if total == 0 else self.hits / total

    def stats(self):
        """One consistent snapshot of every counter, taken atomically.

        The serving layer's ``counters()`` endpoint reads this instead
        of the individual attributes so a concurrent ``get``/``put``
        can never produce a snapshot violating ``hits + misses ==
        lookups``.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": 0.0 if total == 0 else self.hits / total,
            }

    def __repr__(self):
        with self._lock:
            return "AnswerCache(%d/%d entries, %d hits, %d misses)" % (
                len(self._entries), self.capacity, self.hits, self.misses
            )


class CountingTableStore:
    """Bounded LRU store for counting sets, validated by epoch snapshot.

    Keys identify a source node of a specific query form; the stored
    value is the :class:`~repro.exec.counting_engine.CountingTable`
    built from that node plus the epoch snapshot of the base relations
    the DFS read.  A lookup under a different snapshot drops the entry:
    the left graph may have gained arcs, so the table cannot be
    trusted, only rebuilt.
    """

    __slots__ = ("capacity", "_entries", "_lock", "lookups", "hits",
                 "misses", "evictions", "invalidations")

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("store capacity must be >= 1, got %r"
                             % (capacity,))
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.RLock()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key, epochs):
        with self._lock:
            _stall("cache")
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_epochs, table = entry
            if stored_epochs != epochs:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return table

    def put(self, key, epochs, table):
        with self._lock:
            _stall("cache")
            entries = self._entries
            if key in entries:
                entries[key] = (epochs, table)
                entries.move_to_end(key)
                return
            entries[key] = (epochs, table)
            if len(entries) > self.capacity:
                entries.popitem(last=False)
                self.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()

    def assert_consistent(self):
        """Counter/size invariants under contention; raises AssertionError."""
        with self._lock:
            assert self.hits + self.misses == self.lookups, (
                "store counters diverged: %d hits + %d misses != %d "
                "lookups" % (self.hits, self.misses, self.lookups)
            )
            assert len(self._entries) <= self.capacity, (
                "store overflow: %d entries > capacity %d"
                % (len(self._entries), self.capacity)
            )

    def __len__(self):
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self):
        """Fraction of lookups served from the store (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return 0.0 if total == 0 else self.hits / total

    def stats(self):
        """One consistent snapshot of every counter, taken atomically."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": 0.0 if total == 0 else self.hits / total,
            }

    def __repr__(self):
        with self._lock:
            return (
                "CountingTableStore(%d/%d tables, %d hits, %d misses)"
                % (len(self._entries), self.capacity, self.hits,
                   self.misses)
            )
