"""Dedicated evaluators and uniform strategy executors."""

from .cache import AnswerCache, CountingTableStore
from .counting_engine import CountingEngine, CountingRow, CountingTable
from .magic_counting import MagicCountingEngine, recurring_nodes
from .prepared import PreparedQuery
from .qsq import QSQEngine, qsq_evaluate
from .resilient import (
    DEFAULT_CHAIN,
    AttemptRecord,
    ExecutionReport,
    FallbackPolicy,
    run_resilient,
)
from .weak_stratification import (
    tables_equivalent,
    wavefront_counting_table,
    weakly_stratified_counting_table,
)
from .strategies import (
    STRATEGIES,
    ExecutionResult,
    run_classical_counting,
    run_cyclic_counting,
    run_extended_counting,
    run_magic,
    run_magic_counting,
    run_naive,
    run_pointer_counting,
    run_qsq,
    run_reduced_counting,
    run_strategy,
)

__all__ = [
    "AnswerCache",
    "AttemptRecord",
    "CountingEngine",
    "CountingTableStore",
    "PreparedQuery",
    "CountingRow",
    "CountingTable",
    "DEFAULT_CHAIN",
    "ExecutionReport",
    "ExecutionResult",
    "FallbackPolicy",
    "MagicCountingEngine",
    "QSQEngine",
    "STRATEGIES",
    "qsq_evaluate",
    "run_qsq",
    "run_resilient",
    "recurring_nodes",
    "run_classical_counting",
    "run_cyclic_counting",
    "run_extended_counting",
    "run_magic",
    "run_magic_counting",
    "run_naive",
    "run_pointer_counting",
    "run_reduced_counting",
    "run_strategy",
    "tables_equivalent",
    "wavefront_counting_table",
    "weakly_stratified_counting_table",
]
