"""Graceful strategy degradation: the resilient fallback runner.

The optimizer picks the *strongest* applicable method, but strategy
selection is fallible: applicability checks are static approximations,
cyclic data makes counting methods diverge, and a production deployment
additionally imposes resource limits no static check can anticipate.
:func:`run_resilient` treats a strategy as an *attempt*: it walks a
preferred chain (by default ``pointer_counting → extended_counting →
magic_counting → sup_magic → naive``), catches the typed failure of
each stage — :class:`~repro.errors.NotApplicableError`,
:class:`~repro.errors.CountingDivergenceError`, the
:class:`~repro.errors.BudgetExceededError` family and engine-level
:class:`~repro.errors.EvaluationError`\\ s — and degrades to the next
stage.  Degradation is observable, never silent: the returned
:class:`ExecutionReport` records every attempt with its failure class,
elapsed time and partial stats.

Isolation: with ``isolate=True`` (the default) every attempt runs
against a fresh :meth:`Database.copy` snapshot, so a strategy that dies
mid-fixpoint — or an injected fault that corrupts its working copy —
can never leave the caller's database mutated.  The terminal ``naive``
stage is always applicable and unbudgeted by default is not — budgets
apply to every stage alike; choose the chain and limits so the last
stage can finish.
"""

from time import perf_counter

from ..datalog.rules import Query
from ..engine.database import Database
from ..engine.guard import ResourceBudget
from ..errors import (
    BudgetExceededError,
    CircuitOpenError,
    CountingDivergenceError,
    EvaluationError,
    NotApplicableError,
    ResilienceExhaustedError,
)
from .strategies import STRATEGIES, run_strategy

#: The default preference chain: strongest counting method first,
#: always-applicable naive evaluation last.
DEFAULT_CHAIN = (
    "pointer_counting",
    "extended_counting",
    "magic_counting",
    "sup_magic",
    "naive",
)

#: Multiprocess-first chain: the sharded fixpoint leads, and any worker
#: failure (a crash mid-round, an unshippable program, a budget firing)
#: degrades to the serial chain above — the caller always gets complete
#: answers or a typed exhaustion, never a partial parallel result.
PARALLEL_CHAIN = ("parallel",) + DEFAULT_CHAIN

#: Failure classes a stage may degrade past.  Anything else (TypeError,
#: unknown strategy, a genuine bug) propagates immediately.
DEGRADABLE_ERRORS = (
    NotApplicableError,
    CountingDivergenceError,
    BudgetExceededError,
    EvaluationError,
)


class FallbackPolicy:
    """Which strategies to try, in what order, under what limits.

    ``timeout`` / ``max_facts`` / ``max_rounds`` configure a *fresh*
    :class:`ResourceBudget` per attempt (budgets are single-use; a
    shared budget would charge stage N for stage N-1's spending).
    ``isolate`` runs each attempt on a database snapshot.  ``catch`` is
    the tuple of error classes that trigger degradation.  ``workers``
    sizes the pool of any ``parallel`` stage in the chain (ignored by
    serial strategies).  ``recovery`` is that stage's self-healing
    policy (a :class:`~repro.parallel.supervisor.RecoveryPolicy`, a
    mode string, or ``None`` for the default shard-reassignment
    policy): with it, degrading to a serial stage happens only *after*
    in-place repair has been exhausted — the last resort, not the
    first response.
    """

    __slots__ = ("chain", "timeout", "max_facts", "max_rounds",
                 "isolate", "catch", "workers", "recovery")

    def __init__(self, chain=DEFAULT_CHAIN, timeout=None, max_facts=None,
                 max_rounds=None, isolate=True, catch=DEGRADABLE_ERRORS,
                 workers=2, recovery=None):
        chain = tuple(chain)
        if not chain:
            raise ValueError("fallback chain must name at least one strategy")
        unknown = [name for name in chain if name not in STRATEGIES]
        if unknown:
            raise ValueError(
                "unknown strategies in fallback chain: %s"
                % ", ".join(unknown)
            )
        self.chain = chain
        self.timeout = timeout
        self.max_facts = max_facts
        self.max_rounds = max_rounds
        self.isolate = isolate
        self.catch = tuple(catch)
        self.workers = workers
        self.recovery = recovery

    def make_budget(self):
        """A fresh per-attempt budget, or ``None`` when unlimited."""
        if (
            self.timeout is None
            and self.max_facts is None
            and self.max_rounds is None
        ):
            return None
        return ResourceBudget(
            timeout=self.timeout,
            max_facts=self.max_facts,
            max_rounds=self.max_rounds,
        )

    def __repr__(self):
        return "FallbackPolicy(%s)" % " -> ".join(self.chain)


class AttemptRecord:
    """One stage of a resilient run: a strategy and its outcome."""

    __slots__ = ("method", "error", "elapsed", "stats", "breaker_state",
                 "rounds", "recovery")

    def __init__(self, method, error=None, elapsed=0.0, stats=None,
                 breaker_state=None, rounds=0, recovery=None):
        self.method = method
        #: The typed error the stage failed with, or ``None`` on success.
        self.error = error
        self.elapsed = elapsed
        #: Partial :class:`EvalStats` — for budget errors, how far the
        #: stage got before the abort; ``None`` when unavailable.
        self.stats = stats
        #: The strategy's circuit-breaker state *after* this attempt was
        #: recorded, or ``None`` when the run had no breakers.  A
        #: :class:`~repro.errors.CircuitOpenError` attempt with
        #: ``elapsed == 0`` is a skip, not a real execution.
        self.breaker_state = breaker_state
        #: Fixpoint rounds the stage completed before failing — for a
        #: crashed/hung parallel attempt, how much work the serial
        #: restart is re-doing.
        self.rounds = rounds
        #: The parallel stage's self-healing story (the supervisor's
        #: ``as_dict()``: crashes, hangs, repairs, the event log), or
        #: ``None`` for serial stages.  Carried even on failure so the
        #: report shows what recovery tried before degrading.
        self.recovery = recovery

    @property
    def repair_count(self):
        """In-place repairs the stage's supervisor performed."""
        return 0 if not self.recovery else self.recovery.get("repairs", 0)

    @property
    def failed(self):
        return self.error is not None

    @property
    def error_class(self):
        """The failure's class name, or ``None`` on success."""
        return None if self.error is None else type(self.error).__name__

    def __repr__(self):
        outcome = self.error_class if self.failed else "ok"
        return "AttemptRecord(%s: %s, %.4fs)" % (
            self.method, outcome, self.elapsed
        )


class ExecutionReport:
    """Every attempt of a resilient run plus the final result.

    ``attempts`` lists one :class:`AttemptRecord` per stage tried, in
    order; ``result`` is the winning stage's
    :class:`~repro.exec.strategies.ExecutionResult` (``None`` only
    inside a :class:`ResilienceExhaustedError`).
    """

    __slots__ = ("attempts", "result", "policy")

    def __init__(self, policy):
        self.policy = policy
        self.attempts = []
        self.result = None

    @property
    def succeeded(self):
        return self.result is not None

    @property
    def method(self):
        """The strategy that produced the answers, or ``None``."""
        return None if self.result is None else self.result.method

    @property
    def fallback_depth(self):
        """How many preferred stages failed before the winning one."""
        return max(0, len(self.attempts) - 1) if self.succeeded \
            else len(self.attempts)

    @property
    def budget_aborts(self):
        """Attempts that died on a :class:`BudgetExceededError`."""
        return sum(
            1 for attempt in self.attempts
            if isinstance(attempt.error, BudgetExceededError)
        )

    @property
    def total_elapsed(self):
        return sum(attempt.elapsed for attempt in self.attempts)

    def render(self):
        """Human-readable attempt log, one line per stage."""
        lines = []
        for attempt in self.attempts:
            outcome = (
                "ok" if not attempt.failed
                else "failed: %s (%s)" % (attempt.error_class,
                                          attempt.error)
            )
            if attempt.breaker_state is not None:
                outcome += "  [breaker: %s]" % attempt.breaker_state
            if attempt.recovery is not None:
                outcome += "  [recovery: %d repairs, %d rounds]" % (
                    attempt.repair_count, attempt.rounds
                )
            lines.append(
                "%-18s %8.4fs  %s" % (attempt.method, attempt.elapsed,
                                      outcome)
            )
        return "\n".join(lines)

    def summary(self):
        """Structured run log for service/ops telemetry.

        One dict with the winning method and headline counters plus a
        per-attempt list carrying each stage's wall-clock seconds and
        the state its circuit breaker was left in — enough to diagnose
        a shed or retried request from logs alone, without the report
        object in hand.
        """
        return {
            "method": self.method,
            "succeeded": self.succeeded,
            "fallback_depth": self.fallback_depth,
            "budget_aborts": self.budget_aborts,
            "total_elapsed": self.total_elapsed,
            "attempts": [
                {
                    "method": attempt.method,
                    "outcome": attempt.error_class or "ok",
                    "elapsed": attempt.elapsed,
                    "breaker": attempt.breaker_state,
                    "rounds": attempt.rounds,
                    "repairs": attempt.repair_count,
                    "recovery": attempt.recovery,
                }
                for attempt in self.attempts
            ],
        }

    def __repr__(self):
        return "ExecutionReport(%s, %d attempts, %d budget aborts)" % (
            self.method or "exhausted", len(self.attempts),
            self.budget_aborts,
        )


def run_resilient(query, db, policy=None, breakers=None,
                  budget_factory=None):
    """Run ``query`` under a degrading strategy chain.

    Returns an :class:`ExecutionReport` whose ``result`` holds the
    first successful stage's answers.  Raises
    :class:`ResilienceExhaustedError` (carrying the report) when every
    stage fails — by construction impossible with the default chain's
    terminal ``naive`` stage unless a budget is set tight enough to
    starve even that.

    ``breakers`` (anything with ``get(method) -> CircuitBreaker or
    None``, e.g. a :class:`~repro.serve.breaker.BreakerBoard` or plain
    dict) wires per-strategy circuit breakers into the chain: a stage
    whose breaker refuses admission is *skipped* — recorded as a
    zero-elapsed :class:`~repro.errors.CircuitOpenError` attempt — and
    real strategy failures feed the breaker.  Budget aborts do not:
    they describe the caller's limits, not the strategy's health.

    ``budget_factory`` overrides ``policy.make_budget`` with a caller
    callable building each attempt's fresh budget — the serving layer
    threads request deadlines through the chain this way.
    """
    if policy is None:
        policy = FallbackPolicy()
    if not isinstance(query, Query):
        raise TypeError("expected a Query")
    if not isinstance(db, Database):
        raise TypeError("expected a Database")
    report = ExecutionReport(policy)
    for method in policy.chain:
        breaker = None if breakers is None else breakers.get(method)
        if breaker is not None and not breaker.allow():
            report.attempts.append(
                AttemptRecord(
                    method,
                    error=CircuitOpenError(
                        "circuit for %r is %s; stage skipped"
                        % (method, breaker.state)
                    ),
                    breaker_state=breaker.state,
                )
            )
            continue
        budget = budget_factory() if budget_factory is not None \
            else policy.make_budget()
        attempt_db = db.copy() if policy.isolate else db
        options = (
            {"workers": policy.workers, "recovery": policy.recovery}
            if method == "parallel" else {}
        )
        started = perf_counter()
        try:
            result = run_strategy(method, query, attempt_db,
                                  budget=budget, **options)
        except policy.catch as exc:
            if breaker is not None and not isinstance(
                exc, BudgetExceededError
            ):
                breaker.record_failure()
            report.attempts.append(
                AttemptRecord(
                    method,
                    error=exc,
                    elapsed=perf_counter() - started,
                    stats=getattr(exc, "stats", None),
                    breaker_state=None if breaker is None
                    else breaker.state,
                    # A failed parallel stage ships its recovery story
                    # on the error (repair log + rounds completed), so
                    # the degraded report still shows what self-healing
                    # tried before the serial restart.
                    rounds=getattr(exc, "rounds", 0) or 0,
                    recovery=getattr(exc, "recovery", None),
                )
            )
            continue
        if breaker is not None:
            breaker.record_success()
        extras = getattr(result, "extras", None) or {}
        report.attempts.append(
            AttemptRecord(
                method, elapsed=perf_counter() - started,
                stats=result.stats,
                breaker_state=None if breaker is None
                else breaker.state,
                rounds=result.stats.iterations,
                recovery=extras.get("recovery"),
            )
        )
        report.result = result
        return report
    raise ResilienceExhaustedError(
        "all %d strategies failed: %s"
        % (
            len(report.attempts),
            "; ".join(
                "%s (%s)" % (a.method, a.error_class)
                for a in report.attempts
            ),
        ),
        report=report,
    )
