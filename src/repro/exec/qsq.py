"""Query-subquery (QSQ) evaluation — the top-down baseline family.

The magic-set method is the bottom-up simulation of top-down resolution
with memoing; QSQ (Vieille) is the direct top-down formulation, and the
performance studies the paper leans on [4, 11] treat the two as the
same family.  This module implements the *iterative* variant (QSQI):

* a *subquery* is an adorned predicate plus values for its bound
  arguments (``sg__bf`` asked with ``X = a``);
* an agenda seeds with the goal's subquery; evaluating a rule body left
  to right, each derived atom raises a new subquery for its currently
  bound arguments and then joins against that subquery's memoized
  answers;
* answers and subqueries grow monotonically; the outer loop re-runs
  every known subquery until neither grows.

The memo tables correspond one-to-one to the magic (subqueries) and
answer relations of the magic-set rewriting, so QSQ's work profile
tracks magic's — which is exactly how the counting comparisons in the
paper should be read: counting vs *the memoing family*, not vs one
rewriting.  The strategy name is ``qsq``.
"""

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.terms import Constant
from ..datalog.unify import resolve
from ..engine.builtins import eval_comparison
from ..engine.instrumentation import EvalStats
from ..engine.join import ground_head, match_atom
from ..engine.relation import Relation
from ..errors import EvaluationError
from ..rewriting.adornment import adorn_query


class QSQEngine:
    """Iterative query-subquery evaluator over an adorned program."""

    def __init__(self, adorned, db, stats=None, budget=None):
        self.adorned = adorned
        self.db = db
        self.stats = stats if stats is not None else EvalStats()
        #: Optional :class:`~repro.engine.guard.ResourceBudget` checked
        #: once per subquery evaluation (the QSQ round boundary).
        self.budget = budget
        self.adornments = {
            key: adornment
            for key, (_orig, adornment) in adorned.origins.items()
        }
        #: per adorned predicate: memoized answers (full tuples).
        self.answers = {}
        #: per adorned predicate: set of bound-value tuples queried.
        self.subqueries = {}
        self._rules = {}
        for rule in adorned.program:
            self._rules.setdefault(rule.head.key, []).append(rule)
        # Negation over *derived* predicates needs stratum-complete
        # answers before the test fires; this iterative variant has no
        # retraction, so it refuses such programs (the bottom-up
        # engine handles them).
        from ..errors import NotApplicableError

        for rule in adorned.program:
            for atom in rule.negated_atoms():
                if atom.key in self.adornments:
                    raise NotApplicableError(
                        "QSQ variant does not support negation over "
                        "derived predicate %s" % atom.pred
                    )

    # -- memo tables ---------------------------------------------------

    def _answer_relation(self, key):
        relation = self.answers.get(key)
        if relation is None:
            relation = Relation(key[0], key[1])
            self.answers[key] = relation
        return relation

    def _bound_positions(self, key):
        adornment = self.adornments[key]
        return [i for i, letter in enumerate(adornment) if letter == "b"]

    def _raise_subquery(self, key, binding):
        table = self.subqueries.setdefault(key, set())
        if binding in table:
            return False
        table.add(binding)
        return True

    # -- evaluation ------------------------------------------------------

    def run(self, goal):
        """Answer the goal atom; returns the goal's answer relation."""
        goal_key = goal.key
        if goal_key not in self.adornments:
            return self.db.get(goal_key)
        binding = tuple(
            arg.value for arg in goal.args if isinstance(arg, Constant)
        )
        self._raise_subquery(goal_key, binding)
        changed = True
        while changed:
            changed = False
            self.stats.iterations += 1
            before = self.subquery_count()
            for key, bindings in list(self.subqueries.items()):
                for bound_values in list(bindings):
                    if self.budget is not None:
                        self.budget.check(self.stats)
                    if self._evaluate_subquery(key, bound_values):
                        changed = True
            # New subqueries raised during the sweep need their own
            # pass even when no answer was derived yet.
            if self.subquery_count() != before:
                changed = True
        return self._answer_relation(goal_key)

    def _evaluate_subquery(self, key, bound_values):
        grew = False
        positions = self._bound_positions(key)
        for rule in self._rules.get(key, ()):
            subst = {}
            feasible = True
            for position, value in zip(positions, bound_values):
                arg = rule.head.args[position]
                from ..datalog.unify import unify

                subst = unify(arg, Constant(value), subst)
                if subst is None:
                    feasible = False
                    break
            if not feasible:
                continue
            self.stats.rule_firings += 1
            for result in self._body(rule.body, 0, subst):
                row = ground_head(rule.head, result)
                if self._answer_relation(key).add(row):
                    self.stats.facts_derived += 1
                    grew = True
                else:
                    self.stats.facts_duplicate += 1
        return grew

    def _body(self, body, index, subst):
        if index == len(body):
            yield subst
            return
        lit = body[index]
        if isinstance(lit, Atom):
            for extended in self._match(lit, subst):
                yield from self._body(body, index + 1, extended)
        elif isinstance(lit, Negation):
            if not self._holds(lit.atom, subst):
                yield from self._body(body, index + 1, subst)
        elif isinstance(lit, Comparison):
            for extended in eval_comparison(lit, subst):
                yield from self._body(body, index + 1, extended)
        else:
            raise EvaluationError("unknown literal %r" % (lit,))

    def _match(self, atom, subst):
        key = atom.key
        if key in self.adornments:
            binding = []
            for position in self._bound_positions(key):
                term = resolve(atom.args[position], subst)
                if isinstance(term, Constant):
                    binding.append(term.value)
            self._raise_subquery(key, tuple(binding))
            relation = self._answer_relation(key)
        else:
            relation = self.db.get(key)
        yield from match_atom(atom, relation, subst, self.stats)

    def _holds(self, atom, subst):
        key = atom.key
        relation = (
            self._answer_relation(key)
            if key in self.adornments
            else self.db.get(key)
        )
        values = []
        for arg in atom.args:
            term = resolve(arg, subst)
            if not isinstance(term, Constant):
                raise EvaluationError(
                    "negated atom %s not ground" % atom.pred
                )
            values.append(term.value)
        return tuple(values) in relation

    def subquery_count(self):
        return sum(len(b) for b in self.subqueries.values())


def qsq_evaluate(query, db, stats=None, budget=None):
    """Top-down QSQ evaluation of ``query``; returns (answers, engine).

    Answers are projected onto the goal's free positions, like every
    strategy runner.
    """
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    engine = QSQEngine(adorned, db, stats=stats, budget=budget)
    relation = engine.run(adorned.goal)
    from ..engine.fixpoint import goal_filter, project_free

    goal = adorned.goal
    tuples = set(goal_filter(goal, relation))
    return frozenset(project_free(goal, tuples)), engine
