"""Program-level form of Algorithm 2 (extended counting for cyclic
databases).

Algorithm 2's rewritten program uses three LDL constructs the paper
inherits from [5, 12, 22]: object identifiers (``A : c_p(X, _)``),
set-term grouping (``<(R, C, Id)>``) and membership (``(R, C, Id) in
T``).  Its counting rules are *weakly stratified* — they negate their
own predicate to ensure a node enters the counting set only after all
of its ahead predecessors.

The paper itself observes (§4, discussion after Theorem 2) that in
practice one does not evaluate that program generically: the Bushy-
Depth-First fixpoint computes the counting set during the DFS that
classifies the arcs, folds the back-arc information into the counting
tuples and makes the auxiliary predicate ``f`` unnecessary.  Our
executable form of Algorithm 2 is exactly that computation —
:class:`repro.exec.counting_engine.CountingEngine`.

This module renders the *program-level* rewriting as text in the
paper's notation, for inspection and for the structural tests that
check our rule generation against the paper's Example 5.
"""

from ..datalog.pretty import format_literal
from .adornment import adorn_query
from .canonical import canonicalize_clique
from .counting import COUNT_PREFIX
from .support import goal_clique_of


def _fmt_vars(names):
    return ", ".join(names)


def _fmt_value(value):
    from ..datalog.pretty import format_value

    return format_value(value)


def cyclic_counting_program_text(query):
    """Render Algorithm 2's rewritten program for ``query``.

    Returns the program as a string in the paper's extended syntax
    (object identifiers, set terms, membership goals).
    """
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    clique, _support = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    goal = adorned.goal
    lines = []
    out = lines.append

    goal_pred = goal.pred
    seed_values = ", ".join(
        _fmt_value(arg.value) for arg in goal.args if arg.is_ground()
    )
    out("%% counting rules")
    out("%s%s(%s, {(r0, [], nil)})." % (COUNT_PREFIX, goal_pred, seed_values))
    for rule in canonical.recursive_rules:
        if rule.is_left_linear_shape():
            continue
        c_head = COUNT_PREFIX + rule.rec_key[0]
        c_body = COUNT_PREFIX + rule.head_key[0]
        shared = "[%s]" % _fmt_vars(rule.shared_vars)
        left = "".join(
            ", %s" % format_literal(lit) for lit in rule.left
        )
        out(
            "%s(%s, <(%s, %s, Id)>) :- Id : %s(%s, _)%s,"
            % (
                c_head,
                _fmt_vars(rule.rec_bound_vars),
                rule.label,
                shared,
                c_body,
                _fmt_vars(rule.bound_vars),
                left,
            )
        )
        out(
            "    not (ahead_%s(W, %s), W != %s, not %s(W, _))."
            % (
                rule.label,
                _fmt_vars(rule.rec_bound_vars),
                _fmt_vars(rule.bound_vars) or "nil",
                c_body,
            )
        )
    out("")
    out("%% cycle rules")
    for rule in canonical.recursive_rules:
        if rule.is_left_linear_shape():
            continue
        c_head = "cycle_" + rule.rec_key[0]
        c_body = COUNT_PREFIX + rule.head_key[0]
        shared = "[%s]" % _fmt_vars(rule.shared_vars)
        out(
            "%s(%s, <(%s, %s, Id)>) :- Id : %s(%s, _), "
            "back_%s(%s, %s)."
            % (
                c_head,
                _fmt_vars(rule.rec_bound_vars),
                rule.label,
                shared,
                c_body,
                _fmt_vars(rule.bound_vars),
                rule.label,
                _fmt_vars(rule.bound_vars),
                _fmt_vars(rule.rec_bound_vars),
            )
        )
    out("")
    out("%% predecessor closure")
    for key in sorted(canonical.adornments):
        out(
            "f(A, S) :- A : %s%s(X, S1), "
            "if(cycle_%s(X, S2) then S = S1 + S2 else S = S1)."
            % (COUNT_PREFIX, key[0], key[0])
        )
    out("")
    out("%% modified rules")
    for exit_rule in canonical.exit_rules:
        body = ", ".join(
            format_literal(lit) for lit in exit_rule.body
        )
        out(
            "%s(%s, S) :- A : %s%s(%s, _), f(A, S), %s."
            % (
                exit_rule.head_key[0],
                _fmt_vars(exit_rule.free_vars),
                COUNT_PREFIX,
                exit_rule.head_key[0],
                _fmt_vars(exit_rule.bound_vars),
                body,
            )
        )
    for rule in canonical.recursive_rules:
        if rule.is_right_linear_shape():
            continue
        shared = "[%s]" % _fmt_vars(rule.shared_vars)
        right = ", ".join(format_literal(lit) for lit in rule.right)
        parts = [
            "%s(%s, T)" % (rule.rec_key[0], _fmt_vars(rule.rec_free_vars)),
            "(%s, %s, A) in T" % (rule.label, shared),
            "f(A, S)",
        ]
        if rule.bound_in_right:
            parts.append(
                "A : %s%s(%s, _)"
                % (COUNT_PREFIX, rule.head_key[0],
                   _fmt_vars(rule.bound_vars))
            )
        if right:
            parts.append(right)
        out(
            "%s(%s, S) :- %s."
            % (rule.head_key[0], _fmt_vars(rule.free_vars),
               ", ".join(parts))
        )
    out("")
    free = ", ".join(
        a.name for a in goal.args if not a.is_ground()
    )
    out("?- %s(%s, {(r0, [], nil)})." % (goal_pred, free))
    return "\n".join(lines)
