"""Linearization of square recursive rules (the §5/§6 extension
direction: "our technique ... can be extended to classes of non-linear
programs").

The classic non-linear offender is the *square* transitive-closure
rule::

    tc(X, Y) :- tc(X, Z), tc(Z, Y).

None of the counting methods apply to it (two recursive body atoms).
But when the square rule is a clique's **only** recursive rule, its
least fixpoint over the exit relation ``E`` is exactly the transitive
closure ``E+``, which the right-linear program computes as well::

    tc(X, Y) :- E(X, Y).
    tc(X, Y) :- E(X, Z), tc(Z, Y).

:func:`linearize_square_rules` performs that rewriting: each square
rule is replaced by one right-linear rule per exit rule, with the exit
body inlined as the step relation (variables renamed apart).  The
result is linear, so the whole counting toolchain — Algorithms 1-3,
the pointer/cyclic evaluators — applies; the optimizer tries it before
falling back to magic sets.

Soundness (tested on random graphs in ``tests/test_linearize.py``):
with ``S`` the union of the exit-rule bodies, the square program's
model is the least ``T ⊇ S`` with ``T ∘ T ⊆ T``, i.e. ``S+``; the
right-linear program computes ``S ∪ S ∘ S+ = S+`` too.  The argument
needs the clique to contain exactly the square rule and its exit
rules — any other recursive rule voids it, and the function refuses.
"""

from ..datalog.analysis import ProgramAnalysis
from ..datalog.atoms import Atom
from ..datalog.rules import Program, Rule
from ..datalog.terms import Variable
from ..datalog.unify import rename_apart
from ..errors import NotApplicableError


def is_square_rule(rule):
    """True for ``p(X, Y) :- p(X, Z), p(Z, Y).`` exactly (any names).

    The head arguments must be two distinct variables, the body two
    atoms over the head predicate chained through one fresh variable,
    and nothing else in the body.
    """
    head = rule.head
    if head.arity != 2:
        return False
    if len(rule.body) != 2:
        return False
    first, second = rule.body
    if not (isinstance(first, Atom) and isinstance(second, Atom)):
        return False
    if first.key != head.key or second.key != head.key:
        return False
    args = list(head.args) + list(first.args) + list(second.args)
    if not all(isinstance(a, Variable) for a in args):
        return False
    x, y = head.args
    if x.name == y.name:
        return False
    fx, fz1 = first.args
    sz2, sy = second.args
    return (
        fx.name == x.name
        and sy.name == y.name
        and fz1.name == sz2.name
        and fz1.name not in (x.name, y.name)
    )


def linearize_square_rules(program):
    """Replace every eligible square rule by right-linear rules.

    A square rule is eligible when it is the *only* recursive rule of
    its clique and the clique has at least one exit rule.  Returns the
    rewritten program; raises :class:`NotApplicableError` when no
    square rule exists or one exists but is not eligible (another
    recursive rule shares the clique — the equivalence argument then
    fails).
    """
    analysis = ProgramAnalysis(program)
    replacements = {}
    found = False
    for clique in analysis.recursive_cliques():
        squares = [
            rule for rule in clique.recursive_rules
            if is_square_rule(rule)
        ]
        if not squares:
            continue
        found = True
        if len(clique.recursive_rules) != len(squares):
            raise NotApplicableError(
                "clique %s mixes square and other recursive rules; "
                "linearization is not sound there"
                % sorted(p[0] for p in clique.predicates)
            )
        if len(squares) > 1:
            # Duplicate square rules collapse to one.
            squares = squares[:1]
        if not clique.exit_rules:
            raise NotApplicableError(
                "square rule for %s has no exit rules" %
                squares[0].head.pred
            )
        replacements[squares[0].head.key] = (squares[0],
                                             clique.exit_rules)

    if not found:
        raise NotApplicableError("no square recursive rule found")

    out = []
    counter = [0]
    for rule in program:
        key = rule.head.key
        if key in replacements and is_square_rule(rule):
            square, exit_rules = replacements[key]
            x_var, y_var = rule.head.args
            for exit_rule in exit_rules:
                counter[0] += 1
                fresh = rename_apart(exit_rule, "_lz%d" % counter[0])
                # fresh: p(Xe, Ye) :- E.  Step = E with Ye renamed to a
                # middle variable; recursive call continues from there.
                ex, ey = fresh.head.args
                middle = Variable("Z_lz%d" % counter[0])
                from ..datalog.unify import substitute

                mapping = {}
                if isinstance(ex, Variable):
                    mapping[ex.name] = x_var
                if isinstance(ey, Variable):
                    mapping[ey.name] = middle
                body = tuple(
                    _apply_literal(lit, mapping) for lit in fresh.body
                )
                head_ok = (
                    isinstance(ex, Variable)
                    and isinstance(ey, Variable)
                )
                if not head_ok:
                    raise NotApplicableError(
                        "exit rule %s has non-variable head arguments; "
                        "normalize it first" % exit_rule.label
                    )
                out.append(
                    Rule(
                        Atom(rule.head.pred, (x_var, y_var)),
                        body + (Atom(rule.head.pred, (middle, y_var)),),
                        label="%s_lin%d" % (rule.label, counter[0]),
                    )
                )
            continue
        out.append(rule)
    return Program(out)


def _apply_literal(lit, mapping):
    from ..datalog.atoms import Comparison, Negation
    from ..datalog.unify import substitute

    def fix_term(term):
        return substitute(term, mapping)

    if isinstance(lit, Atom):
        return Atom(lit.pred, tuple(fix_term(a) for a in lit.args))
    if isinstance(lit, Negation):
        return Negation(_apply_literal(lit.atom, mapping))
    if isinstance(lit, Comparison):
        return Comparison(lit.op, fix_term(lit.left),
                          fix_term(lit.right))
    raise NotApplicableError("unknown literal %r" % (lit,))
