"""Extended counting for acyclic databases — Algorithm 1 (§3).

The classical integer index is generalized to a *path argument*: a list
of ``(rule-label, shared-values)`` entries operating as a stack.  The
counting rules push an entry for every application of a left part; the
modified rules pop entries, replaying the same rule sequence in reverse
while the right parts rebuild the answers.  This removes the classical
restrictions: any number of linear recursive rules, mutually recursive
predicates with different adornments, and variables shared between the
left and right parts (their values ride on the path entries; bound head
variables used on the right are recovered through the counting
predicate kept in the modified rule body — the ``D_r`` case).

Following Algorithm 1 verbatim:

* no counting rule is generated for a left-linear-shaped rule (its left
  part does not move the binding);
* a right-linear-shaped rule gets a counting rule that does *not* push
  (the path is unchanged) and no modified rule;
* the counting atom in a modified rule body is omitted when
  ``D_r = ∅``.

The output is plain Datalog-with-lists and runs on the generic
semi-naive engine; Theorem 1 guarantees equivalence when the left-part
graph is acyclic (the executor checks this first — on cyclic data the
path lists would grow without bound).
"""

from ..datalog.atoms import Atom
from ..datalog.rules import Program, Query, Rule
from ..datalog.terms import (
    NIL,
    Constant,
    Variable,
    cons,
    make_list,
    make_tuple,
)
from .adornment import adorn_query
from .canonical import canonicalize_clique, query_constants
from .counting import COUNT_PREFIX
from .support import goal_clique_of

#: Name of the path variable introduced by the rewriting.
PATH_VAR = "CNT_PATH"


class ExtendedCountingRewriting:
    """Result of :func:`extended_counting_rewrite`."""

    __slots__ = (
        "adorned",
        "query",
        "counting_rules",
        "modified_rules",
        "support_rules",
        "counting_preds",
        "answer_preds",
        "canonical",
    )

    def __init__(self, adorned, query, counting_rules, modified_rules,
                 support_rules, counting_preds, answer_preds, canonical):
        self.adorned = adorned
        self.query = query
        self.counting_rules = tuple(counting_rules)
        self.modified_rules = tuple(modified_rules)
        self.support_rules = tuple(support_rules)
        #: original clique key -> counting predicate key
        self.counting_preds = dict(counting_preds)
        #: original clique key -> answer predicate key
        self.answer_preds = dict(answer_preds)
        self.canonical = canonical

    @property
    def program(self):
        return self.query.program

    def clique_keys(self):
        return set(self.counting_preds) | set(self.answer_preds)


def _entry_term(rule):
    """The path entry ``(label, [C_r...])`` for a recursive rule."""
    shared = make_list(Variable(v) for v in rule.shared_vars)
    return make_tuple((Constant(rule.label), shared))


def _counting_atom(counting_preds, key, var_names, path_term):
    name, _ = counting_preds[key]
    return Atom(
        name,
        tuple(Variable(v) for v in var_names) + (path_term,),
    )


def _answer_atom(answer_preds, key, var_names, path_term):
    name, _ = answer_preds[key]
    return Atom(
        name,
        tuple(Variable(v) for v in var_names) + (path_term,),
    )


def extended_counting_rewrite(query):
    """Apply Algorithm 1 (extended counting) to ``query``."""
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    clique, support_rules = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    goal = adorned.goal

    counting_preds = {}
    answer_preds = {}
    for rule in canonical.exit_rules:
        key = rule.head_key
        counting_preds.setdefault(
            key, (COUNT_PREFIX + key[0], len(rule.bound_vars) + 1)
        )
        answer_preds.setdefault(key, (key[0], len(rule.free_vars) + 1))
    for rule in canonical.recursive_rules:
        for key, bound, free in (
            (rule.head_key, rule.bound_vars, rule.free_vars),
            (rule.rec_key, rule.rec_bound_vars, rule.rec_free_vars),
        ):
            counting_preds.setdefault(
                key, (COUNT_PREFIX + key[0], len(bound) + 1)
            )
            answer_preds.setdefault(key, (key[0], len(free) + 1))

    path = Variable(PATH_VAR)
    counting_rules = [
        Rule(
            Atom(
                counting_preds[goal.key][0],
                tuple(Constant(v) for v in query_constants(goal)) + (NIL,),
            ),
            (),
            label="c_seed",
        )
    ]
    for rule in canonical.recursive_rules:
        if rule.is_left_linear_shape():
            continue
        if rule.is_right_linear_shape():
            head_path = path
        else:
            head_path = cons(_entry_term(rule), path)
        counting_rules.append(
            Rule(
                _counting_atom(
                    counting_preds, rule.rec_key, rule.rec_bound_vars,
                    head_path,
                ),
                (
                    _counting_atom(
                        counting_preds, rule.head_key, rule.bound_vars,
                        path,
                    ),
                )
                + rule.left,
                label="c_%s" % rule.label,
            )
        )

    modified_rules = []
    for exit_rule in canonical.exit_rules:
        modified_rules.append(
            Rule(
                _answer_atom(
                    answer_preds, exit_rule.head_key, exit_rule.free_vars,
                    path,
                ),
                (
                    _counting_atom(
                        counting_preds, exit_rule.head_key,
                        exit_rule.bound_vars, path,
                    ),
                )
                + exit_rule.body,
                label=exit_rule.label,
            )
        )
    for rule in canonical.recursive_rules:
        if rule.is_right_linear_shape():
            continue
        if rule.is_left_linear_shape():
            body_path = path
        else:
            body_path = cons(_entry_term(rule), path)
        body = [
            _answer_atom(
                answer_preds, rule.rec_key, rule.rec_free_vars, body_path
            )
        ]
        if rule.bound_in_right:
            body.append(
                _counting_atom(
                    counting_preds, rule.head_key, rule.bound_vars, path
                )
            )
        body.extend(rule.right)
        modified_rules.append(
            Rule(
                _answer_atom(
                    answer_preds, rule.head_key, rule.free_vars, path
                ),
                tuple(body),
                label=rule.label,
            )
        )

    free_args = tuple(arg for arg in goal.args if not arg.is_ground())
    new_goal = Atom(answer_preds[goal.key][0], free_args + (NIL,))
    program = Program(
        tuple(counting_rules) + tuple(modified_rules) + tuple(support_rules)
    )
    return ExtendedCountingRewriting(
        adorned,
        Query(new_goal, program),
        counting_rules,
        modified_rules,
        support_rules,
        counting_preds,
        answer_preds,
        canonical,
    )
