"""Left-, right- and mixed-linear program classification (Section 5).

A recursive rule is *right-linear* with respect to an adornment when the
recursive call carries the head's free arguments unchanged and there is
no right part (the answer of the call *is* the answer of the head); it
is *left-linear* when the call carries the bound arguments unchanged and
there is no left part.  A *mixed-linear* program has a single recursive
predicate and only left-/right-linear recursive rules.

These shapes are what Algorithm 3 exploits: right-linear rules never pop
the path argument and left-linear rules never push it, so for mixed
programs the whole path argument disappears (Example 6, Fact 1).
"""

RIGHT_LINEAR = "right-linear"
LEFT_LINEAR = "left-linear"
GENERAL = "general"


def rule_shape(canonical_rule):
    """Classify one canonical recursive rule."""
    if canonical_rule.is_right_linear_shape():
        return RIGHT_LINEAR
    if canonical_rule.is_left_linear_shape():
        return LEFT_LINEAR
    return GENERAL


def clique_shapes(canonical):
    """Shape of every recursive rule of a canonical clique."""
    return {
        rule.label: rule_shape(rule)
        for rule in canonical.recursive_rules
    }


def is_mixed_linear(canonical):
    """True if the clique matches the paper's mixed-linear class."""
    if len({r.head_key for r in canonical.recursive_rules}
           | {r.rec_key for r in canonical.recursive_rules}) > 1:
        return False
    return all(
        rule_shape(rule) != GENERAL
        for rule in canonical.recursive_rules
    )


def is_right_linear_program(canonical):
    return is_mixed_linear(canonical) and all(
        rule_shape(rule) == RIGHT_LINEAR
        for rule in canonical.recursive_rules
    )


def is_left_linear_program(canonical):
    return is_mixed_linear(canonical) and all(
        rule_shape(rule) == LEFT_LINEAR
        for rule in canonical.recursive_rules
    )
