"""Magic-set rewriting (the paper's baseline method [3, 17, 4]).

Given an adorned query, the rewriting produces:

* a *magic seed* — the fact ``m_g(a)`` for the goal's bound constants;
* *magic rules* — for every occurrence of a derived atom ``q`` in an
  adorned rule body, a rule deriving ``m_q`` from the head's magic
  predicate and the body prefix before the occurrence;
* *modified rules* — every adorned rule guarded by the magic predicate
  of its head.

Magic sets apply to **all** programs, which is why the paper uses them
as the general-purpose comparison point for the counting methods.

Negation caveat: restricting a predicate that appears *negated* can
break stratification (the magic rule for the negated occurrence makes
the negated predicate depend on the negating clique).  Predicates with
negated occurrences are therefore left unrestricted — no magic rules
from negated occurrences and no guard on their own rules — which is a
sound superset and keeps the rewritten program stratified.
"""

from ..datalog.atoms import Atom, Negation
from ..datalog.rules import Program, Query, Rule
from .adornment import adorn_query

#: Prefix of magic predicate names.
MAGIC_PREFIX = "m_"


def magic_name(adorned_pred):
    return MAGIC_PREFIX + adorned_pred


def magic_atom(atom, adornment):
    """The magic atom for ``atom``: bound-position arguments only."""
    args = tuple(
        arg for arg, letter in zip(atom.args, adornment) if letter == "b"
    )
    return Atom(magic_name(atom.pred), args)


class MagicRewriting:
    """Result of :func:`magic_rewrite`."""

    __slots__ = ("adorned", "query", "magic_rules", "modified_rules",
                 "seed")

    def __init__(self, adorned, query, magic_rules, modified_rules, seed):
        self.adorned = adorned
        #: The rewritten query: same goal atom over the magic program.
        self.query = query
        self.magic_rules = tuple(magic_rules)
        self.modified_rules = tuple(modified_rules)
        self.seed = seed

    @property
    def program(self):
        return self.query.program


def magic_rewrite(query):
    """Apply the magic-set transformation to ``query``.

    Accepts a plain :class:`Query` (it is adorned first) or an
    already-adorned :class:`AdornedQuery`.
    """
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    program = adorned.program
    goal = adorned.goal
    adornments = {
        key: adornment for key, (_, adornment) in adorned.origins.items()
    }
    if goal.key not in adornments:
        # Goal over a base predicate: nothing to rewrite.
        return MagicRewriting(adorned, adorned.query, (), (), None)

    # Predicates with negated occurrences stay unrestricted (see the
    # module docstring) — and so does everything their rules call,
    # since no magic seeds flow out of unguarded rules.
    unrestricted = set()
    for rule in program:
        for atom in rule.negated_atoms():
            if atom.key in adornments:
                unrestricted.add(atom.key)
    changed = True
    while changed:
        changed = False
        for rule in program:
            if rule.head.key not in unrestricted:
                continue
            for atom in rule.body_atoms() + rule.negated_atoms():
                if atom.key in adornments and \
                        atom.key not in unrestricted:
                    unrestricted.add(atom.key)
                    changed = True

    seed = Rule(magic_atom(goal, adornments[goal.key]), (), label="m_seed")
    magic_rules = [seed]
    modified_rules = []
    for rule in program:
        head_adornment = adornments[rule.head.key]
        if rule.head.key in unrestricted:
            modified_rules.append(rule)
            continue
        guard = magic_atom(rule.head, head_adornment)
        # Magic rules: one per positive derived body occurrence.
        for index, lit in enumerate(rule.body):
            if not isinstance(lit, Atom) or lit.key not in adornments:
                continue
            if lit.key in unrestricted:
                continue
            body = (guard,) + rule.body[:index]
            magic_rules.append(
                Rule(
                    magic_atom(lit, adornments[lit.key]),
                    body,
                    label="m_%s_%d" % (rule.label, index),
                )
            )
        modified_rules.append(
            Rule(rule.head, (guard,) + rule.body, label=rule.label)
        )
    rewritten = Program(tuple(magic_rules) + tuple(modified_rules))
    rewritten_query = Query(goal, rewritten)
    return MagicRewriting(
        adorned, rewritten_query, magic_rules, modified_rules, seed
    )


def magic_predicates(rewriting):
    """Keys of the magic predicates of a rewriting."""
    keys = set()
    for rule in rewriting.magic_rules:
        keys.add(rule.head.key)
    return keys


def magic_set_size(derived_relations, rewriting):
    """Total number of magic tuples computed in an evaluation."""
    total = 0
    for key in magic_predicates(rewriting):
        relation = derived_relations.get(key)
        if relation is not None:
            total += len(relation)
    return total
