"""Adornment of programs with respect to a query (Section 2).

An adorned program annotates every derived predicate with a string over
``{b, f}`` recording which arguments are bound when the predicate is
called top-down.  We propagate bindings with the standard left-to-right
sideways information passing: processing a rule body in order, a base
atom binds all of its variables, a derived atom is adorned with the
bindings available so far and then binds all of its variables, ``is``
and ``in`` bind their left variable, ``=`` may bind one side.

Adorned predicates are materialized as renamed predicates
``name__adornment`` (e.g. ``sg__bf``), which keeps the adorned program a
plain program that every downstream component (engine, rewritings)
handles uniformly.
"""

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Program, Query, Rule
from ..datalog.terms import Variable
from ..errors import RewritingError

#: Separator between a predicate name and its adornment.
ADORN_SEP = "__"


def adorned_name(name, adornment):
    return "%s%s%s" % (name, ADORN_SEP, adornment)


def split_adorned(name):
    """Inverse of :func:`adorned_name`; returns (base, adornment)."""
    base, sep, adornment = name.rpartition(ADORN_SEP)
    if not sep or not adornment or set(adornment) - {"b", "f"}:
        return name, None
    return base, adornment


def atom_adornment(atom, bound_vars):
    """Adornment of ``atom`` given the currently bound variables."""
    letters = []
    for arg in atom.args:
        if arg.is_ground() or arg.variables() <= bound_vars:
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


def bound_argument_vars(atom, adornment):
    """Variables in the bound positions of ``atom`` under ``adornment``."""
    names = set()
    for arg, letter in zip(atom.args, adornment):
        if letter == "b":
            names |= arg.variables()
    return names


class AdornedQuery:
    """Result of adorning a query.

    Attributes
    ----------
    original : the input :class:`Query`.
    query : the adorned :class:`Query` (renamed goal over the adorned
        program).
    origins : mapping adorned predicate key -> (original key, adornment).
    """

    __slots__ = ("original", "query", "origins")

    def __init__(self, original, query, origins):
        self.original = original
        self.query = query
        self.origins = dict(origins)

    @property
    def program(self):
        return self.query.program

    @property
    def goal(self):
        return self.query.goal

    def original_key(self, key):
        """The (name, arity) of the original predicate behind ``key``."""
        entry = self.origins.get(key)
        return key if entry is None else entry[0]

    def adornment_of(self, key):
        entry = self.origins.get(key)
        return None if entry is None else entry[1]


def adorn_query(query):
    """Adorn ``query.program`` with respect to ``query.goal``.

    Only rules relevant to the goal (reachable through the adorned
    call graph) appear in the result, which is itself an optimization
    both magic sets and counting build on.
    """
    program = query.program
    derived = program.head_predicates()
    goal = query.goal
    if goal.key not in derived:
        # Goal over a base predicate: nothing to adorn.
        return AdornedQuery(query, query, {})
    goal_adornment = "".join(
        "b" if arg.is_ground() else "f" for arg in goal.args
    )
    origins = {}
    adorned_rules = []
    worklist = [(goal.key, goal_adornment)]
    seen = set()
    while worklist:
        key, adornment = worklist.pop()
        if (key, adornment) in seen:
            continue
        seen.add((key, adornment))
        new_key = (adorned_name(key[0], adornment), key[1])
        origins[new_key] = (key, adornment)
        for rule in program.rules_for(key):
            adorned_rules.append(
                _adorn_rule(rule, adornment, derived, worklist)
            )
    adorned_goal = Atom(adorned_name(goal.pred, goal_adornment), goal.args)
    adorned_query = Query(adorned_goal, Program(adorned_rules))
    return AdornedQuery(query, adorned_query, origins)


def _adorn_rule(rule, adornment, derived, worklist):
    head = rule.head
    if len(adornment) != head.arity:
        raise RewritingError(
            "adornment %r does not match arity of %s/%d"
            % (adornment, head.pred, head.arity)
        )
    bound = bound_argument_vars(head, adornment)
    new_body = []
    for lit in rule.body:
        if isinstance(lit, Atom):
            if lit.key in derived:
                sub = atom_adornment(lit, bound)
                worklist.append((lit.key, sub))
                new_body.append(Atom(adorned_name(lit.pred, sub), lit.args))
            else:
                new_body.append(lit)
            bound |= lit.variables()
        elif isinstance(lit, Negation):
            atom = lit.atom
            if atom.key in derived:
                sub = atom_adornment(atom, bound)
                worklist.append((atom.key, sub))
                new_body.append(
                    Negation(Atom(adorned_name(atom.pred, sub), atom.args))
                )
            else:
                new_body.append(lit)
        elif isinstance(lit, Comparison):
            new_body.append(lit)
            if lit.op in ("is", "in") and isinstance(lit.left, Variable):
                bound.add(lit.left.name)
            elif lit.op == "=":
                left_vars = lit.left.variables()
                right_vars = lit.right.variables()
                if left_vars <= bound:
                    bound |= right_vars
                elif right_vars <= bound:
                    bound |= left_vars
        else:
            raise RewritingError("unknown literal %r" % (lit,))
    new_head = Atom(adorned_name(head.pred, adornment), head.args)
    return Rule(new_head, tuple(new_body), label=rule.label)
