"""The generalized counting method of Saccà & Zaniolo [15].

Before this paper's list/pointer path arguments, [15] handled multiple
recursive rules by *encoding the rule log into an integer*: with ``R``
recursive rules, pushing rule ``i`` maps index ``I`` to ``I * R + i``
and popping recovers ``i = K mod R``, ``I = K div R`` (a leading ``1``
marks the empty log so lengths are preserved).  The paper's §3.4
verdict: "Unfortunately this is not practical because the size of the
number grows exponentially with the number of steps".

We implement the method faithfully — it is the natural third column in
experiment E8, where the encoded integers' bit length is measured
against the list and pointer representations.  Applicability matches
[15]: linear clique over a single predicate, no variables shared
between left and right parts, no bound head variables on the right,
acyclic data (divergence-guarded like classical counting).

The rewritten program for Example 3's two-rule same generation::

    c_sg(a, 1).
    c_sg(X1, K) :- c_sg(X, I), up1(X, X1), K is I * 2 + 0.
    c_sg(X1, K) :- c_sg(X, I), up2(X, X1), K is I * 2 + 1.
    sg(Y, I)    :- c_sg(X, I), flat(X, Y).
    sg(Y, I)    :- sg(Y1, K), K > 1, K mod 2 = 0, I is K // 2,
                   down1(Y1, Y).
    sg(Y, I)    :- sg(Y1, K), K > 1, K mod 2 = 1, I is K // 2,
                   down2(Y1, Y).
    ?- sg(Y, 1).

(the ``mod`` test is expressed with ``//`` arithmetic since the engine
folds integer expressions: ``K - (K // R) * R = i``).
"""

from ..datalog.atoms import Atom, Comparison
from ..datalog.rules import Program, Query, Rule
from ..datalog.terms import Compound, Constant, Variable
from ..errors import NotApplicableError
from .adornment import adorn_query
from .canonical import canonicalize_clique, query_constants
from .support import goal_clique_of

ENC_PREFIX = "ce_"


class EncodedCountingRewriting:
    """Result of :func:`encoded_counting_rewrite`."""

    __slots__ = ("adorned", "query", "counting_rules", "modified_rules",
                 "support_rules", "counting_pred", "answer_pred",
                 "canonical", "base")

    def __init__(self, adorned, query, counting_rules, modified_rules,
                 support_rules, counting_pred, answer_pred, canonical,
                 base):
        self.adorned = adorned
        self.query = query
        self.counting_rules = tuple(counting_rules)
        self.modified_rules = tuple(modified_rules)
        self.support_rules = tuple(support_rules)
        self.counting_pred = counting_pred
        self.answer_pred = answer_pred
        self.canonical = canonical
        #: The encoding base (number of recursive rules).
        self.base = base

    @property
    def program(self):
        return self.query.program


def check_encoded_applicability(canonical):
    """[15]'s preconditions: single predicate, no shared variables."""
    keys = {r.head_key for r in canonical.recursive_rules}
    keys |= {r.rec_key for r in canonical.recursive_rules}
    if len(keys) > 1:
        raise NotApplicableError(
            "encoded counting supports a single recursive predicate; "
            "found %s" % sorted(k[0] for k in keys)
        )
    for rule in canonical.recursive_rules:
        if rule.is_left_linear_shape():
            # The encoded counting rule for a left-linear rule is a
            # self-loop (same node, longer log): the counting set
            # explodes no matter the data.  [15] presumes rules that
            # move the binding; reject statically.
            raise NotApplicableError(
                "encoded counting diverges on left-linear rule %s "
                "(empty left part)" % rule.label
            )
        if rule.shared_vars:
            raise NotApplicableError(
                "encoded counting forbids shared variables "
                "(rule %s shares %s)"
                % (rule.label, list(rule.shared_vars))
            )
        if rule.bound_in_right:
            raise NotApplicableError(
                "encoded counting forbids bound head variables in the "
                "right part (rule %s uses %s)"
                % (rule.label, list(rule.bound_in_right))
            )


def encoded_counting_rewrite(query):
    """Apply the [15] integer-encoded counting rewriting to ``query``."""
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    clique, support_rules = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    check_encoded_applicability(canonical)

    goal = adorned.goal
    counting_pred = ENC_PREFIX + goal.pred
    answer_pred = goal.pred
    base = max(len(canonical.recursive_rules), 2)
    index_i = Variable("ENC_I")
    index_k = Variable("ENC_K")

    counting_rules = [
        Rule(
            Atom(
                counting_pred,
                tuple(Constant(v) for v in query_constants(goal))
                + (Constant(1),),
            ),
            (),
            label="c_seed",
        )
    ]
    modified_rules = []
    for exit_rule in canonical.exit_rules:
        modified_rules.append(
            Rule(
                Atom(
                    answer_pred,
                    tuple(Variable(v) for v in exit_rule.free_vars)
                    + (index_i,),
                ),
                (
                    Atom(
                        counting_pred,
                        tuple(Variable(v) for v in exit_rule.bound_vars)
                        + (index_i,),
                    ),
                )
                + exit_rule.body,
                label=exit_rule.label,
            )
        )
    for digit, rule in enumerate(canonical.recursive_rules):
        # Push: K = I * base + digit.
        counting_rules.append(
            Rule(
                Atom(
                    counting_pred,
                    tuple(Variable(v) for v in rule.rec_bound_vars)
                    + (index_k,),
                ),
                (
                    Atom(
                        counting_pred,
                        tuple(Variable(v) for v in rule.bound_vars)
                        + (index_i,),
                    ),
                )
                + rule.left
                + (
                    Comparison(
                        "is",
                        index_k,
                        Compound(
                            "+",
                            (
                                Compound(
                                    "*", (index_i, Constant(base))
                                ),
                                Constant(digit),
                            ),
                        ),
                    ),
                ),
                label="c_%s" % rule.label,
            )
        )
        # Pop: K > 1, K mod base = digit, I = K // base.
        quotient = Compound("//", (index_k, Constant(base)))
        remainder_test = Comparison(
            "=",
            Compound(
                "-",
                (index_k, Compound("*", (quotient, Constant(base)))),
            ),
            Constant(digit),
        )
        modified_rules.append(
            Rule(
                Atom(
                    answer_pred,
                    tuple(Variable(v) for v in rule.free_vars)
                    + (index_i,),
                ),
                (
                    Atom(
                        answer_pred,
                        tuple(Variable(v) for v in rule.rec_free_vars)
                        + (index_k,),
                    ),
                    Comparison(">", index_k, Constant(1)),
                    remainder_test,
                    Comparison("is", index_i, quotient),
                )
                + rule.right,
                label=rule.label,
            )
        )

    free_args = tuple(arg for arg in goal.args if not arg.is_ground())
    new_goal = Atom(answer_pred, free_args + (Constant(1),))
    program = Program(
        tuple(counting_rules) + tuple(modified_rules)
        + tuple(support_rules)
    )
    bound_width = len(canonical.recursive_rules[0].bound_vars) \
        if canonical.recursive_rules else 0
    return EncodedCountingRewriting(
        adorned,
        Query(new_goal, program),
        counting_rules,
        modified_rules,
        support_rules,
        (counting_pred, bound_width + 1),
        (answer_pred, len(free_args) + 1),
        canonical,
        base,
    )
