"""The classical counting method [3, 17] (Section 1 of the paper).

The rewriting adds to each magic tuple its *distance* from the query
constant, so the answer phase at level ``I`` only joins with results of
level ``I + 1``.  For the same-generation query ``sg(a, Y)`` it produces
exactly the program of Example 1::

    c_sg(a, 0).
    c_sg(X1, I + 1) :- c_sg(X, I), up(X, X1).
    sg(Y, I)        :- c_sg(X, I), flat(X, Y).
    sg(Y, I)        :- sg(Y1, I + 1), down(Y1, Y).

(arithmetic is emitted in the executable direction: ``J is I + 1`` in
the counting rule and ``I is J - 1, I >= 0`` in the modified rule).

Applicability — the classical limitations the paper removes (§1):

1. one recursive rule per clique, with the same predicate and the same
   adornment in head and body;
2. no variables shared between the left and the right part
   (``C_r = ∅``) and no bound head variable in the right part
   (``D_r = ∅``);
3. the left-part relation must be acyclic (checked at *runtime*: the
   executor bounds the index by the number of reachable nodes and
   raises :class:`CountingDivergenceError` on overflow).
"""

from ..datalog.atoms import Atom, Comparison
from ..datalog.rules import Program, Query, Rule
from ..datalog.terms import Compound, Constant, Variable
from ..errors import NotApplicableError
from .adornment import adorn_query
from .canonical import canonicalize_clique, query_constants
from .support import goal_clique_of

#: Prefix of counting predicate names.
COUNT_PREFIX = "c_"


class ClassicalCountingRewriting:
    """Result of :func:`classical_counting_rewrite`."""

    __slots__ = (
        "adorned",
        "query",
        "counting_rules",
        "modified_rules",
        "support_rules",
        "counting_pred",
        "answer_pred",
        "canonical",
    )

    def __init__(self, adorned, query, counting_rules, modified_rules,
                 support_rules, counting_pred, answer_pred, canonical):
        self.adorned = adorned
        self.query = query
        self.counting_rules = tuple(counting_rules)
        self.modified_rules = tuple(modified_rules)
        self.support_rules = tuple(support_rules)
        self.counting_pred = counting_pred
        self.answer_pred = answer_pred
        self.canonical = canonical

    @property
    def program(self):
        return self.query.program


def check_classical_applicability(canonical):
    """Raise :class:`NotApplicableError` unless the classical method
    applies to this canonical clique (conditions 1-2 above)."""
    if len(canonical.recursive_rules) != 1:
        raise NotApplicableError(
            "classical counting requires exactly one recursive rule, "
            "found %d" % len(canonical.recursive_rules)
        )
    rule = canonical.recursive_rules[0]
    if rule.head_key != rule.rec_key:
        raise NotApplicableError(
            "classical counting requires the recursive call to use the "
            "head predicate with the same adornment (%s vs %s)"
            % (rule.head_key[0], rule.rec_key[0])
        )
    if rule.shared_vars:
        raise NotApplicableError(
            "classical counting forbids variables shared between left "
            "and right part: %s" % list(rule.shared_vars)
        )
    if rule.bound_in_right:
        raise NotApplicableError(
            "classical counting forbids bound head variables in the "
            "right part: %s" % list(rule.bound_in_right)
        )


def classical_counting_rewrite(query):
    """Apply the classical counting rewriting to ``query``."""
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    clique, support_rules = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    check_classical_applicability(canonical)

    goal = adorned.goal
    goal_pred = goal.pred
    counting_pred = COUNT_PREFIX + goal_pred
    answer_pred = goal_pred
    rule = canonical.recursive_rules[0]
    index_i = Variable("CNT_I")
    index_j = Variable("CNT_J")

    seed = Rule(
        Atom(
            counting_pred,
            tuple(Constant(v) for v in query_constants(goal)) +
            (Constant(0),),
        ),
        (),
        label="c_seed",
    )
    counting_rule = Rule(
        Atom(
            counting_pred,
            tuple(Variable(v) for v in rule.rec_bound_vars) + (index_j,),
        ),
        (
            Atom(
                counting_pred,
                tuple(Variable(v) for v in rule.bound_vars) + (index_i,),
            ),
        )
        + rule.left
        + (
            Comparison(
                "is", index_j, Compound("+", (index_i, Constant(1)))
            ),
        ),
        label="c_%s" % rule.label,
    )
    counting_rules = (seed, counting_rule)

    modified_rules = []
    for exit_rule in canonical.exit_rules:
        modified_rules.append(
            Rule(
                Atom(
                    answer_pred,
                    tuple(Variable(v) for v in exit_rule.free_vars)
                    + (index_i,),
                ),
                (
                    Atom(
                        counting_pred,
                        tuple(Variable(v) for v in exit_rule.bound_vars)
                        + (index_i,),
                    ),
                )
                + exit_rule.body,
                label=exit_rule.label,
            )
        )
    modified_rules.append(
        Rule(
            Atom(
                answer_pred,
                tuple(Variable(v) for v in rule.free_vars) + (index_i,),
            ),
            (
                Atom(
                    answer_pred,
                    tuple(Variable(v) for v in rule.rec_free_vars)
                    + (index_j,),
                ),
                Comparison(
                    "is", index_i, Compound("-", (index_j, Constant(1)))
                ),
                Comparison(">=", index_i, Constant(0)),
            )
            + rule.right,
            label=rule.label,
        )
    )

    free_args = tuple(
        arg for arg in goal.args if not arg.is_ground()
    )
    new_goal = Atom(answer_pred, free_args + (Constant(0),))
    program = Program(
        counting_rules + tuple(modified_rules) + tuple(support_rules)
    )
    return ClassicalCountingRewriting(
        adorned,
        Query(new_goal, program),
        counting_rules,
        modified_rules,
        support_rules,
        (counting_pred, len(rule.bound_vars) + 1),
        (answer_pred, len(free_args) + 1),
        canonical,
    )
