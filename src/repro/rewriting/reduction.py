"""Program reduction — Algorithm 3 (Section 5).

Applied to the output of the extended counting rewriting, the reduction
performs two simplifications:

1. *Deletion of the path argument.*  The path argument of a set of
   mutually recursive predicates can be dropped when no rule of the set
   modifies it.  The counting predicates and the answer predicates form
   two separate recursive cliques, so the test runs independently for
   each: counting rules push unless the source rule is right-linear,
   modified rules pop unless the source rule is left-linear.

2. *Deletion of disconnected counting atoms.*  A counting atom in a
   modified rule body whose variables are disjoint from the rest of the
   rule (head included) contributes nothing once the path argument is
   gone and is removed.

A final dead-rule sweep drops rules for predicates no longer reachable
from the goal, and collapses rules that became identical.  For mixed
linear programs this reproduces the specialized optimizations of
Naughton et al. [14] (Fact 1; tested in ``tests/test_reduction.py``).
"""

from ..datalog.atoms import Atom, Negation
from ..datalog.rules import Program, Query, Rule
from .extended import ExtendedCountingRewriting
from .linearity import LEFT_LINEAR, RIGHT_LINEAR, rule_shape


class ReducedCountingRewriting:
    """Result of :func:`reduce_rewriting`."""

    __slots__ = (
        "source",
        "query",
        "path_deleted_counting",
        "path_deleted_answer",
        "removed_counting_atoms",
        "dropped_rules",
    )

    def __init__(self, source, query, path_deleted_counting,
                 path_deleted_answer, removed_counting_atoms,
                 dropped_rules):
        #: The unreduced :class:`ExtendedCountingRewriting`.
        self.source = source
        self.query = query
        self.path_deleted_counting = path_deleted_counting
        self.path_deleted_answer = path_deleted_answer
        self.removed_counting_atoms = removed_counting_atoms
        self.dropped_rules = tuple(dropped_rules)

    @property
    def program(self):
        return self.query.program

    @property
    def adorned(self):
        return self.source.adorned


def _counting_clique_static(canonical):
    """True if no counting rule modifies the path argument.

    Counting rules exist only for non-left-linear rules and push unless
    the rule is right-linear, so the clique is static exactly when every
    recursive rule is left- or right-linear shaped.
    """
    return all(
        rule_shape(rule) in (RIGHT_LINEAR, LEFT_LINEAR)
        for rule in canonical.recursive_rules
    )


def _answer_clique_static(canonical):
    """True if no modified rule modifies the path argument.

    Modified rules exist only for non-right-linear rules and pop unless
    the rule is left-linear; with Algorithm 1's push/pop special cases
    the condition coincides with the counting clique's, but Algorithm 3
    states them independently and we keep them separate for clarity.
    """
    return all(
        rule_shape(rule) in (LEFT_LINEAR, RIGHT_LINEAR)
        for rule in canonical.recursive_rules
    )


def _drop_last_arg(atom):
    return Atom(atom.pred, atom.args[:-1])


def _strip_paths(rule, target_names):
    """Drop the last argument of every atom over ``target_names``."""

    def fix_atom(atom):
        if atom.pred in target_names:
            return _drop_last_arg(atom)
        return atom

    head = fix_atom(rule.head)
    body = []
    for lit in rule.body:
        if isinstance(lit, Atom):
            body.append(fix_atom(lit))
        elif isinstance(lit, Negation):
            body.append(Negation(fix_atom(lit.atom)))
        else:
            body.append(lit)
    return Rule(head, tuple(body), label=rule.label)


def _remove_disconnected_counting(rule, counting_names):
    """Apply reduction rule 2 to one modified rule."""
    removed = 0
    body = list(rule.body)
    changed = True
    while changed:
        changed = False
        for index, lit in enumerate(body):
            if not isinstance(lit, Atom) or lit.pred not in counting_names:
                continue
            other_vars = set(rule.head.variables())
            for j, other in enumerate(body):
                if j != index:
                    other_vars |= other.variables()
            if lit.variables() & other_vars:
                continue
            del body[index]
            removed += 1
            changed = True
            break
    if not removed:
        return rule, 0
    return Rule(rule.head, tuple(body), label=rule.label), removed


def _reachable_rules(rules, goal_key):
    by_head = {}
    for rule in rules:
        by_head.setdefault(rule.head.key, []).append(rule)
    needed = set()
    stack = [goal_key]
    while stack:
        key = stack.pop()
        if key in needed:
            continue
        needed.add(key)
        for rule in by_head.get(key, ()):
            for atom in rule.body_atoms() + rule.negated_atoms():
                stack.append(atom.key)
    kept = []
    dropped = []
    for rule in rules:
        if rule.head.key in needed:
            kept.append(rule)
        else:
            dropped.append(rule)
    return kept, dropped


def reduce_rewriting(rewriting):
    """Apply Algorithm 3 to an extended counting rewriting."""
    if not isinstance(rewriting, ExtendedCountingRewriting):
        raise TypeError("reduce_rewriting expects an "
                        "ExtendedCountingRewriting")
    canonical = rewriting.canonical
    counting_names = {name for name, _ in rewriting.counting_preds.values()}
    answer_names = {name for name, _ in rewriting.answer_preds.values()}

    reduce_counting = _counting_clique_static(canonical)
    reduce_answer = _answer_clique_static(canonical)

    rules = list(rewriting.counting_rules) + list(rewriting.modified_rules)
    goal = rewriting.query.goal
    if reduce_counting:
        rules = [_strip_paths(rule, counting_names) for rule in rules]
        if goal.pred in counting_names:
            goal = _drop_last_arg(goal)
    if reduce_answer:
        rules = [_strip_paths(rule, answer_names) for rule in rules]
        if goal.pred in answer_names:
            goal = _drop_last_arg(goal)

    removed_atoms = 0
    cleaned = []
    for rule in rules:
        if rule.head.pred in answer_names:
            rule, removed = _remove_disconnected_counting(
                rule, counting_names
            )
            removed_atoms += removed
        cleaned.append(rule)

    # Collapse duplicates created by argument deletion, preserving order.
    unique = []
    seen = set()
    for rule in cleaned:
        signature = (rule.head, rule.body)
        if signature in seen:
            continue
        seen.add(signature)
        unique.append(rule)

    all_rules = unique + list(rewriting.support_rules)
    kept, dropped = _reachable_rules(all_rules, goal.key)
    program = Program(kept)
    return ReducedCountingRewriting(
        rewriting,
        Query(goal, program),
        reduce_counting,
        reduce_answer,
        removed_atoms,
        dropped,
    )
