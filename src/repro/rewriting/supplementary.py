"""Supplementary magic sets (Beeri & Ramakrishnan [6], the refinement
of the basic method the comparisons in [4] use).

The basic magic rewriting re-evaluates a rule's body prefix twice: once
inside the magic rule deriving the next binding and once inside the
modified rule deriving answers.  The supplementary variant materializes
each prefix once:

    sup_r_0(V0)   :- m_p(Xb).                  % the guard
    m_q(X1b)      :- sup_r_{j-1}(V), prefix_j.  % next binding
    sup_r_j(Vj)   :- sup_r_{j-1}(V), prefix_j, q(...).
    p(head)       :- sup_r_k(Vk), suffix.

``Vj`` keeps exactly the variables bound so far that are still needed —
by later literals or by the head.  For rules without derived body atoms
the rewriting degenerates to the basic guarded rule, and for rules with
a single derived atom (every linear rule) it saves one prefix
re-evaluation per round.

Whether the materialization pays off is workload-dependent: it wins
when prefixes are long or shared between several derived occurrences,
and loses when the supplementary relations are larger than the scans
they save (e.g. same generation over trees, where ``sup`` stores an
(X, Y1) pair per partial match — see E1).  The paper compares counting
against the magic-set *family*; benchmarks include ``sup_magic`` so the
counting advantage is shown against both variants.
"""

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Program, Query, Rule
from ..datalog.terms import Variable
from .adornment import adorn_query
from .magic import magic_atom

SUP_PREFIX = "sup_"


class SupplementaryMagicRewriting:
    """Result of :func:`supplementary_magic_rewrite`."""

    __slots__ = ("adorned", "query", "magic_rules", "sup_rules",
                 "modified_rules", "seed")

    def __init__(self, adorned, query, magic_rules, sup_rules,
                 modified_rules, seed):
        self.adorned = adorned
        self.query = query
        self.magic_rules = tuple(magic_rules)
        self.sup_rules = tuple(sup_rules)
        self.modified_rules = tuple(modified_rules)
        self.seed = seed

    @property
    def program(self):
        return self.query.program


def _bound_after(literals, initial):
    """Variables bound after evaluating ``literals`` from ``initial``."""
    bound = set(initial)
    for lit in literals:
        if isinstance(lit, Atom):
            bound |= lit.variables()
        elif isinstance(lit, Comparison):
            if lit.op in ("is", "in") and isinstance(lit.left, Variable):
                bound.add(lit.left.name)
            elif lit.op == "=":
                if lit.left.variables() <= bound:
                    bound |= lit.right.variables()
                elif lit.right.variables() <= bound:
                    bound |= lit.left.variables()
    return bound


def _needed_after(literals, head):
    needed = set(head.variables())
    for lit in literals:
        needed |= lit.variables()
    return needed


def supplementary_magic_rewrite(query):
    """Apply the supplementary magic transformation to ``query``."""
    adorned = query if hasattr(query, "origins") else adorn_query(query)
    program = adorned.program
    goal = adorned.goal
    adornments = {
        key: adornment for key, (_, adornment) in adorned.origins.items()
    }
    if goal.key not in adornments:
        return SupplementaryMagicRewriting(
            adorned, adorned.query, (), (), (), None
        )

    # Same stratification safeguard as the basic rewriting: predicates
    # with negated occurrences — and everything their rules call — are
    # evaluated unrestricted.
    unrestricted = set()
    for rule in program:
        for atom in rule.negated_atoms():
            if atom.key in adornments:
                unrestricted.add(atom.key)
    changed = True
    while changed:
        changed = False
        for rule in program:
            if rule.head.key not in unrestricted:
                continue
            for atom in rule.body_atoms() + rule.negated_atoms():
                if atom.key in adornments and \
                        atom.key not in unrestricted:
                    unrestricted.add(atom.key)
                    changed = True

    seed = Rule(magic_atom(goal, adornments[goal.key]), (),
                label="m_seed")
    magic_rules = [seed]
    sup_rules = []
    modified_rules = []
    # Adorned variants of one source rule share its label, so sup
    # predicate names are keyed by the rule's position in the adorned
    # program instead.
    for rule_index, rule in enumerate(program):
        if rule.head.key in unrestricted:
            modified_rules.append(rule)
            continue
        guard = magic_atom(rule.head, adornments[rule.head.key])
        occurrences = [
            index
            for index, lit in enumerate(rule.body)
            if isinstance(lit, Atom)
            and lit.key in adornments
            and lit.key not in unrestricted
        ]
        if not occurrences:
            modified_rules.append(
                Rule(rule.head, (guard,) + rule.body, label=rule.label)
            )
            continue
        previous = guard
        start = 0
        for j, index in enumerate(occurrences):
            lit = rule.body[index]
            atom = lit.atom if isinstance(lit, Negation) else lit
            prefix = rule.body[start:index]
            magic_rules.append(
                Rule(
                    magic_atom(atom, adornments[atom.key]),
                    (previous,) + prefix,
                    label="m_%s_%d" % (rule.label, index),
                )
            )
            bound = _bound_after(
                rule.body[: index + 1], guard.variables()
            )
            needed = _needed_after(rule.body[index + 1:], rule.head)
            kept = tuple(sorted(bound & needed))
            sup_head = Atom(
                "%sr%d_%d" % (SUP_PREFIX, rule_index, j + 1),
                tuple(Variable(name) for name in kept),
            )
            sup_rules.append(
                Rule(
                    sup_head,
                    (previous,) + prefix + (lit,),
                    label="s_%s_%d" % (rule.label, j + 1),
                )
            )
            previous = sup_head
            start = index + 1
        suffix = rule.body[start:]
        modified_rules.append(
            Rule(rule.head, (previous,) + suffix, label=rule.label)
        )
    rewritten = Program(
        tuple(magic_rules) + tuple(sup_rules) + tuple(modified_rules)
    )
    return SupplementaryMagicRewriting(
        adorned, Query(goal, rewritten), magic_rules, sup_rules,
        modified_rules, seed,
    )
