"""Shared helpers for the rewriting modules.

The counting rewritings transform only the *goal clique* — the
recursive clique of the (adorned) query predicate.  Rules of lower
cliques (which the goal clique treats like database relations, per the
paper's topological evaluation order) are carried over unchanged as
*support rules*.
"""

from ..datalog.analysis import ProgramAnalysis
from ..errors import NotApplicableError


def goal_clique_of(adorned):
    """The goal's recursive clique and the remaining support rules.

    ``adorned`` is an :class:`~repro.rewriting.adornment.AdornedQuery`.
    Returns ``(clique, support_rules)`` where ``support_rules`` are all
    adorned rules whose head predicate is outside the clique.  Raises
    :class:`NotApplicableError` if the goal predicate has no rules or is
    not recursive.
    """
    program = adorned.program
    goal = adorned.goal
    analysis = ProgramAnalysis(program)
    clique = analysis.clique_of(goal.key)
    if clique is None:
        raise NotApplicableError(
            "goal predicate %s/%d is not a derived predicate" % goal.key
        )
    if not clique.is_recursive():
        raise NotApplicableError(
            "goal predicate %s/%d is not recursive; no binding-passing "
            "rewriting is needed" % goal.key
        )
    support_rules = tuple(
        rule for rule in program if rule.head.key not in clique.predicates
    )
    return clique, support_rules
