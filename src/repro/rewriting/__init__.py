"""Rewriting methods: adornment, magic sets, classical counting,
extended counting (Algorithms 1-2), reduction (Algorithm 3) and the
unified optimizer."""

from .adornment import AdornedQuery, adorn_query, adorned_name, split_adorned
from .canonical import (
    CanonicalClique,
    CanonicalExitRule,
    CanonicalRecursiveRule,
    canonicalize_clique,
    canonicalize_exit_rule,
    canonicalize_rule,
    query_constants,
)
from .counting import ClassicalCountingRewriting, classical_counting_rewrite
from .cyclic import cyclic_counting_program_text
from .encoded import EncodedCountingRewriting, encoded_counting_rewrite
from .extended import ExtendedCountingRewriting, extended_counting_rewrite
from .linearity import (
    GENERAL,
    LEFT_LINEAR,
    RIGHT_LINEAR,
    clique_shapes,
    is_left_linear_program,
    is_mixed_linear,
    is_right_linear_program,
    rule_shape,
)
from .linearize import is_square_rule, linearize_square_rules
from .magic import MagicRewriting, magic_rewrite, magic_set_size
from .pipeline import OptimizationPlan, choose_method, optimize
from .reduction import ReducedCountingRewriting, reduce_rewriting
from .supplementary import (
    SupplementaryMagicRewriting,
    supplementary_magic_rewrite,
)
from .support import goal_clique_of

__all__ = [
    "AdornedQuery",
    "CanonicalClique",
    "CanonicalExitRule",
    "CanonicalRecursiveRule",
    "ClassicalCountingRewriting",
    "EncodedCountingRewriting",
    "ExtendedCountingRewriting",
    "encoded_counting_rewrite",
    "GENERAL",
    "LEFT_LINEAR",
    "MagicRewriting",
    "OptimizationPlan",
    "RIGHT_LINEAR",
    "ReducedCountingRewriting",
    "adorn_query",
    "adorned_name",
    "canonicalize_clique",
    "canonicalize_exit_rule",
    "canonicalize_rule",
    "choose_method",
    "classical_counting_rewrite",
    "clique_shapes",
    "cyclic_counting_program_text",
    "extended_counting_rewrite",
    "goal_clique_of",
    "is_left_linear_program",
    "is_mixed_linear",
    "is_right_linear_program",
    "is_square_rule",
    "linearize_square_rules",
    "magic_rewrite",
    "magic_set_size",
    "optimize",
    "query_constants",
    "reduce_rewriting",
    "rule_shape",
    "split_adorned",
    "SupplementaryMagicRewriting",
    "supplementary_magic_rewrite",
]
