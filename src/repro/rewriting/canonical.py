"""Canonical form of adorned linear rules (Section 2).

The counting rewritings assume rules of the shape::

    exit:      p(X, Y) <- E(B).
    recursive: p(X, Y) <- L(A), q(X1, Y1), R(B).

where ``X``/``Y`` are the bound/free argument lists of ``p`` under its
adornment, ``q`` is mutually recursive with ``p``, ``L`` binds the
recursive call's bound arguments ``X1`` from ``X``, and ``R`` produces
the head's free arguments ``Y`` from the recursive result ``Y1``.  The
paper assumes rules are already in this form ("each rule can be put in
such a form by simple rewriting"); :func:`canonicalize_rule` performs
that rewriting:

* non-variable or repeated arguments in the head and in the recursive
  atom are replaced by fresh variables constrained with ``=``;
* the body is split around the recursive atom; literals are assigned to
  the left part if they are connected to the bound side and do not
  mention the recursive call's free variables, to the right part
  otherwise;
* the safety conditions ``X1 ⊆ X ∪ vars(L)`` and
  ``Y ⊆ vars(L) ∪ Y1 ∪ vars(R)`` are verified.

The sets ``C_r`` (left-part values needed later: variables of ``L``
also occurring in ``R`` *or in the free head arguments*) and ``D_r``
(bound head variables occurring in ``R``) follow §3.3; ``C_r`` is
slightly generalized so that free head variables produced by the left
part are carried on the path argument as well.
"""

from ..datalog.atoms import Comparison
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..errors import NotApplicableError


class CanonicalExitRule:
    """An exit rule ``p(X, Y) <- E(B)`` of a recursive clique."""

    __slots__ = ("rule", "head_key", "bound_vars", "free_vars", "body")

    def __init__(self, rule, head_key, bound_vars, free_vars, body):
        self.rule = rule
        self.head_key = head_key
        self.bound_vars = tuple(bound_vars)
        self.free_vars = tuple(free_vars)
        self.body = tuple(body)

    @property
    def label(self):
        return self.rule.label


class CanonicalRecursiveRule:
    """A linear recursive rule split into left part, call and right part."""

    __slots__ = (
        "rule",
        "head_key",
        "rec_key",
        "bound_vars",
        "free_vars",
        "rec_bound_vars",
        "rec_free_vars",
        "left",
        "rec_atom",
        "right",
        "shared_vars",
        "bound_in_right",
    )

    def __init__(self, rule, head_key, rec_key, bound_vars, free_vars,
                 rec_bound_vars, rec_free_vars, left, rec_atom, right,
                 shared_vars, bound_in_right):
        self.rule = rule
        self.head_key = head_key
        self.rec_key = rec_key
        self.bound_vars = tuple(bound_vars)
        self.free_vars = tuple(free_vars)
        self.rec_bound_vars = tuple(rec_bound_vars)
        self.rec_free_vars = tuple(rec_free_vars)
        #: Left part ``L`` — binds the recursive call from the head.
        self.left = tuple(left)
        self.rec_atom = rec_atom
        #: Right part ``R`` — produces the head's free arguments.
        self.right = tuple(right)
        #: ``C_r``: left-part variables needed by the right part or head.
        self.shared_vars = tuple(shared_vars)
        #: ``D_r``: bound head variables used by the right part.
        self.bound_in_right = tuple(bound_in_right)

    @property
    def label(self):
        return self.rule.label

    def is_right_linear_shape(self):
        """True if the rule needs no path push (Algorithm 1 test).

        The counting rule does not extend the path when the right part
        is empty, head and recursive predicates coincide and the free
        arguments are passed through unchanged.
        """
        return (
            not self.right
            and self.head_key == self.rec_key
            and self.free_vars == self.rec_free_vars
        )

    def is_left_linear_shape(self):
        """True if the rule needs no path pop (Algorithm 1 test)."""
        return (
            not self.left
            and self.head_key == self.rec_key
            and self.bound_vars == self.rec_bound_vars
        )


class CanonicalClique:
    """A recursive clique in canonical form, ready for rewriting."""

    __slots__ = ("clique", "exit_rules", "recursive_rules", "adornments")

    def __init__(self, clique, exit_rules, recursive_rules, adornments):
        self.clique = clique
        self.exit_rules = tuple(exit_rules)
        self.recursive_rules = tuple(recursive_rules)
        #: Mapping predicate key -> adornment string.
        self.adornments = dict(adornments)

    def predicates(self):
        return self.clique.predicates

    def rules_by_head(self, key):
        return (
            tuple(r for r in self.exit_rules if r.head_key == key),
            tuple(r for r in self.recursive_rules if r.head_key == key),
        )


def _fresh_names(taken, base, count):
    names = []
    index = 0
    for _ in range(count):
        while True:
            name = "%s_%d" % (base, index)
            index += 1
            if name not in taken:
                taken.add(name)
                names.append(name)
                break
    return names


def _normalize_atom_args(atom, adornment, taken, extra_left, extra_right):
    """Ensure every argument of ``atom`` is a distinct variable.

    Non-variable or repeated arguments are replaced with fresh
    variables; for each replacement an ``=`` constraint is appended to
    ``extra_left`` (bound positions — checkable before the recursive
    call) or ``extra_right`` (free positions).
    """
    seen = set()
    new_args = []
    for arg, letter in zip(atom.args, adornment):
        if isinstance(arg, Variable) and arg.name not in seen:
            seen.add(arg.name)
            new_args.append(arg)
            continue
        (fresh_name,) = _fresh_names(taken, "V", 1)
        fresh = Variable(fresh_name)
        constraint = Comparison("=", fresh, arg)
        if letter == "b":
            extra_left.append(constraint)
        else:
            extra_right.append(constraint)
        new_args.append(fresh)
    return atom.with_args(tuple(new_args))


def _literal_vars(lit):
    return lit.variables()


def _split_body(before, after, bound_vars, rec_free_vars):
    """Assign the non-recursive literals to left and right parts.

    Literals textually before the recursive atom stay in the left part
    when possible; literals after it stay in the right part.  A literal
    placed before the call that mentions a recursive-call free variable
    cannot be evaluated during the counting phase and is moved right; a
    literal after the call is left where it is (moving it left would
    change no answers but we keep the author's evaluation order).
    """
    rec_free = set(rec_free_vars)
    left = []
    right = []
    for lit in before:
        if _literal_vars(lit) & rec_free:
            right.append(lit)
        else:
            left.append(lit)
    right.extend(after)
    return tuple(left), tuple(right)


def canonicalize_rule(rule, clique, adornments):
    """Build the :class:`CanonicalRecursiveRule` for ``rule``.

    Raises :class:`NotApplicableError` when the rule cannot be put in
    canonical form (non-linear, or the left part cannot bind the
    recursive call's bound arguments).
    """
    head_key = rule.head.key
    head_adornment = adornments[head_key]
    taken = set(rule.variables())
    extra_left = []
    extra_right = []
    head = _normalize_atom_args(
        rule.head, head_adornment, taken, extra_left, extra_right
    )
    rec_atom_original = clique.recursive_atom(rule)
    rec_key = rec_atom_original.key
    rec_adornment = adornments.get(rec_key)
    if rec_adornment is None:
        raise NotApplicableError(
            "recursive predicate %s/%d has no adornment" % rec_key
        )
    rec_extra_left = []
    rec_extra_right = []
    rec_atom = _normalize_atom_args(
        rec_atom_original, rec_adornment, taken, rec_extra_left,
        rec_extra_right,
    )
    index = rule.body.index(rec_atom_original)
    before = list(rule.body[:index]) + extra_left + rec_extra_left
    after = rec_extra_right + extra_right + list(rule.body[index + 1:])

    bound_vars = [
        a.name for a, letter in zip(head.args, head_adornment)
        if letter == "b"
    ]
    free_vars = [
        a.name for a, letter in zip(head.args, head_adornment)
        if letter == "f"
    ]
    rec_bound_vars = [
        a.name for a, letter in zip(rec_atom.args, rec_adornment)
        if letter == "b"
    ]
    rec_free_vars = [
        a.name for a, letter in zip(rec_atom.args, rec_adornment)
        if letter == "f"
    ]
    left, right = _split_body(before, after, bound_vars, rec_free_vars)

    # Safety: the left part (plus the bound head arguments) must bind
    # the recursive call's bound arguments.
    left_bound = set(bound_vars)
    for lit in left:
        left_bound |= _literal_vars(lit)
    missing = set(rec_bound_vars) - left_bound
    if missing:
        raise NotApplicableError(
            "left part of rule %s cannot bind recursive arguments %s"
            % (rule.label, sorted(missing))
        )
    left_vars = set()
    for lit in left:
        left_vars |= _literal_vars(lit)
    right_vars = set()
    for lit in right:
        right_vars |= _literal_vars(lit)
    needed_later = right_vars | set(free_vars)
    # C_r: values produced during the counting phase that the answer
    # phase will need — left-part variables plus the recursive call's
    # bound arguments (the latter are the target node, so they are
    # recoverable from the counting tuple, but carrying them keeps the
    # program-level rewriting self-contained).
    shared_vars = sorted(
        ((left_vars | set(rec_bound_vars)) - set(bound_vars))
        & needed_later
    )
    bound_in_right = sorted(set(bound_vars) & needed_later)
    canonical = Rule(
        head, tuple(left) + (rec_atom,) + tuple(right), label=rule.label
    )
    return CanonicalRecursiveRule(
        canonical,
        head_key,
        rec_key,
        bound_vars,
        free_vars,
        rec_bound_vars,
        rec_free_vars,
        left,
        rec_atom,
        right,
        shared_vars,
        bound_in_right,
    )


def canonicalize_exit_rule(rule, adornments):
    head_key = rule.head.key
    head_adornment = adornments[head_key]
    taken = set(rule.variables())
    extra_left = []
    extra_right = []
    head = _normalize_atom_args(
        rule.head, head_adornment, taken, extra_left, extra_right
    )
    body = tuple(extra_left) + tuple(rule.body) + tuple(extra_right)
    bound_vars = [
        a.name for a, letter in zip(head.args, head_adornment)
        if letter == "b"
    ]
    free_vars = [
        a.name for a, letter in zip(head.args, head_adornment)
        if letter == "f"
    ]
    canonical = Rule(head, body, label=rule.label)
    return CanonicalExitRule(canonical, head_key, bound_vars, free_vars, body)


def canonicalize_clique(clique, adorned):
    """Canonicalize every rule of a recursive clique.

    ``adorned`` is the :class:`~repro.rewriting.adornment.AdornedQuery`
    providing adornments for the clique's predicates.  Raises
    :class:`NotApplicableError` for non-linear cliques.
    """
    if not clique.is_linear():
        raise NotApplicableError(
            "clique %r contains a non-linear recursive rule"
            % sorted(clique.predicates)
        )
    adornments = {}
    for key in clique.predicates:
        adornment = adorned.adornment_of(key)
        if adornment is None:
            raise NotApplicableError(
                "predicate %s/%d is not adorned" % key
            )
        adornments[key] = adornment
    exit_rules = [
        canonicalize_exit_rule(rule, adornments)
        for rule in clique.exit_rules
    ]
    recursive_rules = [
        canonicalize_rule(rule, clique, adornments)
        for rule in clique.recursive_rules
    ]
    if not exit_rules:
        # Without exit rules the recursion derives nothing; the
        # counting set would still be built, so reject early.
        raise NotApplicableError(
            "clique %r has no exit rule" % sorted(clique.predicates)
        )
    return CanonicalClique(clique, exit_rules, recursive_rules, adornments)


def query_constants(goal):
    """Values of the goal's bound arguments, in position order."""
    values = []
    for arg in goal.args:
        if isinstance(arg, Constant):
            values.append(arg.value)
        elif arg.is_ground():
            from ..datalog.terms import ground_value

            values.append(ground_value(arg))
    return tuple(values)
