"""The unified optimizer (the paper's "unifying framework").

:func:`optimize` inspects a query and picks the strongest applicable
method:

1. if the goal is a base predicate or a non-recursive derived
   predicate, no binding-passing rewriting is needed (``naive`` /
   ``magic`` respectively);
2. if the goal clique is linear and canonicalizable, a counting method
   applies:

   * a mixed-linear clique reduces to a path-free program
     (``reduced_counting`` — Algorithm 3; safe on any data);
   * otherwise, when a database is at hand, the left graph is
     classified: acyclic data uses the §3.4 pointer implementation
     (``pointer_counting``), cyclic data Algorithm 2
     (``cyclic_counting``);
   * with no database to inspect, Algorithm 2 is chosen — it is correct
     for both cases;

3. a non-linear clique whose only recursive rule is the *square*
   transitive-closure shape is first linearized to right-linear form
   (:mod:`repro.rewriting.linearize`, the paper's §6 extension
   direction) and the selection re-runs on the linearized query;
4. anything else (other non-linear recursion, clique without exit
   rules, unbindable recursive calls) falls back to ``magic``, which
   is always applicable.
"""

from ..datalog.rules import Query
from ..errors import NotApplicableError
from .adornment import adorn_query
from .canonical import canonicalize_clique, query_constants
from .linearity import is_mixed_linear
from .support import goal_clique_of


class OptimizationPlan:
    """A chosen strategy, executable against any database."""

    __slots__ = ("query", "method", "reason", "adorned")

    def __init__(self, query, method, reason, adorned=None):
        self.query = query
        self.method = method
        #: Human-readable justification of the choice.
        self.reason = reason
        self.adorned = adorned

    def execute(self, db, budget=None):
        """Run the plan; returns an
        :class:`~repro.exec.strategies.ExecutionResult`.

        ``budget`` is an optional
        :class:`~repro.engine.guard.ResourceBudget` bounding the run.
        """
        from ..exec.strategies import run_strategy

        return run_strategy(self.method, self.query, db, budget=budget)

    def explain(self):
        return "%s: %s" % (self.method, self.reason)

    def __repr__(self):
        return "OptimizationPlan(%s)" % self.method


def choose_method(query, db=None):
    """Pick the strongest applicable strategy for ``query``.

    Returns ``(method_name, reason, adorned_or_None)``.
    """
    if not isinstance(query, Query):
        raise TypeError("expected a Query")
    program = query.program
    if query.goal.key not in program.head_predicates():
        return ("naive", "goal is a base predicate; direct lookup", None)
    adorned = adorn_query(query)
    try:
        clique, _support = goal_clique_of(adorned)
    except NotApplicableError:
        return (
            "magic",
            "goal predicate is not recursive; magic sets push the "
            "binding through its rules without any counting machinery",
            adorned,
        )
    try:
        canonical = canonicalize_clique(clique, adorned)
    except NotApplicableError as exc:
        return (
            "magic",
            "counting does not apply (%s); magic sets are always "
            "applicable" % exc,
            adorned,
        )
    if is_mixed_linear(canonical):
        return (
            "reduced_counting",
            "mixed-linear clique: Algorithm 3 deletes the path argument "
            "entirely (safe on cyclic data too)",
            adorned,
        )
    if db is not None:
        from ..exec.strategies import _counting_engine_for
        from ..engine.instrumentation import EvalStats
        from ..graph.dfs import classify_arcs

        engine = _counting_engine_for(
            adorned, db, EvalStats(), require_acyclic=False
        )
        source = (adorned.goal.key, tuple(query_constants(adorned.goal)))
        classification = classify_arcs(source, engine._successors)
        if classification.is_acyclic():
            return (
                "pointer_counting",
                "linear clique over an acyclic left graph: §3.4 pointer "
                "implementation",
                adorned,
            )
        return (
            "cyclic_counting",
            "linear clique with %d back arcs in the left graph: "
            "Algorithm 2" % len(classification.back),
            adorned,
        )
    return (
        "cyclic_counting",
        "linear clique, database not inspected: Algorithm 2 is correct "
        "for acyclic and cyclic data alike",
        adorned,
    )


def optimize(query, db=None, method="auto"):
    """Build an :class:`OptimizationPlan` for ``query``.

    ``method='auto'`` applies the selection policy above; any strategy
    name from :data:`repro.exec.strategies.STRATEGIES` forces that
    method.
    """
    if method != "auto":
        from ..exec.strategies import STRATEGIES

        if method not in STRATEGIES:
            raise ValueError(
                "unknown method %r; available: auto, %s"
                % (method, ", ".join(sorted(STRATEGIES)))
            )
        return OptimizationPlan(query, method, "requested explicitly")
    name, reason, adorned = choose_method(query, db)
    if name == "magic":
        # Last resort before settling for magic: square-rule
        # linearization (the paper's §6 extension direction) may turn a
        # non-linear clique into a counting-treatable one.
        from .linearize import linearize_square_rules

        try:
            linearized = Query(
                query.goal, linearize_square_rules(query.program)
            )
        except NotApplicableError:
            linearized = None
        if linearized is not None:
            lin_name, lin_reason, lin_adorned = choose_method(
                linearized, db
            )
            if lin_name not in ("magic", "naive"):
                return OptimizationPlan(
                    linearized,
                    lin_name,
                    "after square-rule linearization: %s" % lin_reason,
                    lin_adorned,
                )
    return OptimizationPlan(query, name, reason, adorned)
