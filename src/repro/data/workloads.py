"""Canonical workloads: the paper's example programs paired with data
generators.

Each :class:`Workload` bundles a query, a database builder and the
strategies that are applicable, so tests and benchmarks iterate over
them uniformly.  The programs are literal transcriptions of the
paper's Examples 1 and 3-6, plus the pure right-/left-linear programs
of Section 5 and a non-linear program exercising the magic-set
fallback.
"""

from ..datalog.parser import parse_query
from . import generators


class Workload:
    """A named query plus a family of databases."""

    __slots__ = ("name", "query", "make_db", "description", "applicable")

    def __init__(self, name, query_text, make_db, description,
                 applicable):
        self.name = name
        self.query = parse_query(query_text)
        #: ``make_db(**params) -> (Database, source_value)``
        self.make_db = make_db
        self.description = description
        #: Strategy names expected to run without NotApplicableError.
        self.applicable = tuple(applicable)

    def __repr__(self):
        return "Workload(%s)" % self.name


SG_TEXT = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
?- sg(a, Y).
"""

MULTI_RULE_TEXT = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up1(X, X1), sg(X1, Y1), down1(Y1, Y).
sg(X, Y) :- up2(X, X1), sg(X1, Y1), down2(Y1, Y).
?- sg(a, Y).
"""

SHARED_VARS_TEXT = """
p(X, Y) :- flat(X, Y).
p(X, Y) :- up1(X, X1, W), p(X1, Y1), down1(Y1, Y, W).
p(X, Y) :- up2(X, X1), p(X1, Y1), down2(Y1, Y, X).
?- p(a, Y).
"""

MIXED_LINEAR_TEXT = """
p(X, Y) :- flat(X, Y).
p(X, Y) :- up(X, X1), p(X1, Y).
p(X, Y) :- p(X, Y1), down(Y1, Y).
?- p(a, Y).
"""

RIGHT_LINEAR_TEXT = """
reach(X, Y) :- flat(X, Y).
reach(X, Y) :- up(X, X1), reach(X1, Y).
?- reach(a, Y).
"""

LEFT_LINEAR_TEXT = """
desc(X, Y) :- flat(X, Y).
desc(X, Y) :- desc(X, Y1), down(Y1, Y).
?- desc(a, Y).
"""

NONLINEAR_TEXT = """
tc(X, Y) :- arc(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
?- tc(a, Y).
"""

MUTUAL_TEXT = """
even(X, Y) :- flat(X, Y).
even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
?- even(a, Y).
"""

_ALL_ACYCLIC = (
    "naive", "magic", "extended_counting", "reduced_counting",
    "pointer_counting", "cyclic_counting", "magic_counting",
    "sup_magic", "qsq", "parallel",
)


def _rename_source(db, source, target="a"):
    """Rebuild ``db`` with ``source`` renamed to ``target``.

    The example queries hard-code the constant ``a``; generators use
    structured node names, so the source node is renamed.
    """
    from ..engine.database import Database

    renamed = Database()
    for key in db.keys():
        rel = db.get(key)
        for row in rel:
            renamed.relation(key[0], key[1]).add(
                tuple(target if v == source else v for v in row)
            )
    return renamed


def sg_tree(fanout=2, depth=4):
    db, root = generators.sg_tree_db(fanout, depth)
    return _rename_source(db, root), "a"


def sg_chain(depth=16):
    db, source = generators.sg_chain_db(depth)
    return _rename_source(db, source), "a"


def sg_cyclic(cycle_length=4, down_length=24):
    db, source = generators.sg_cyclic_db(cycle_length, down_length)
    return _rename_source(db, source), "a"


def sg_example5():
    """The exact database of Example 5."""
    from ..engine.database import Database

    return Database.from_text("""
        up(a, b). up(b, c). up(c, d). up(d, e). up(e, d). up(b, e).
        flat(e, f).
        down(f, g). down(g, h). down(h, i). down(i, j). down(j, k).
        down(k, l).
    """), "a"


def forest_root(index):
    """Query constant of forest tree ``index``: ``a``, ``a1``, ``a2``…

    Tree 0 keeps the name ``a`` so the workload's hard-coded query
    ``sg(a, Y)?`` works unchanged; the other roots are the natural
    rebinding targets for prepared-query workloads.
    """
    return "a" if index == 0 else "a%d" % index


def sg_forest(trees=4, fanout=2, depth=4):
    """Several disjoint mirrored same-generation trees in one database.

    Each tree is an independent copy of the :func:`sg_tree` shape with
    its own root constant (:func:`forest_root`), so one database serves
    a whole stream of ``sg(c, Y)?`` queries with different ``c`` — the
    repeated-query workload behind experiment S3.
    """
    from ..engine.database import Database

    db = Database()
    for index in range(trees):
        up_facts, up_root, up_leaves = generators.full_tree(
            fanout, depth, "up", "t%da" % index
        )
        down_facts, _down_root, down_leaves = generators.full_tree(
            fanout, depth, "tmp", "t%db" % index
        )
        root = forest_root(index)
        for _pred, (parent, child) in up_facts:
            db.add_fact("up", root if parent == up_root else parent, child)
        for _pred, (parent, child) in down_facts:
            db.add_fact("down", child, parent)
        for x, y in zip(up_leaves, down_leaves):
            db.add_fact("flat", x, y)
    return db, "a"


def forest_bindings(trees=4, queries=16):
    """A repeated-query binding stream cycling over the forest roots."""
    return tuple(
        (forest_root(index % trees),) for index in range(queries)
    )


def poison_forest(db, tree=0):
    """Close an ``up``-cycle in one tree of an :func:`sg_forest` database.

    Adds a single ``up(<leaf>, <root>)`` edge back from the tree's
    deepest layer to its root, so the counting methods fail typed on
    queries rooted in that tree while every other tree stays healthy —
    the controlled-degradation scenario behind the serving-layer
    breaker tests.  Returns the ``(leaf, root)`` edge added.
    """
    root = forest_root(tree)
    up = db.relation("up", 2)
    parents = {parent for parent, _child in up}
    prefix = "t%da" % tree
    leaves = sorted(
        str(child) for _parent, child in up
        if child not in parents and str(child).startswith(prefix)
    )
    if not leaves:
        raise ValueError("tree %d has no up-leaves to poison" % tree)
    db.add_fact("up", leaves[0], root)
    return leaves[0], root


def multi_rule_chain(depth=12):
    """Alternating up1/up2 chains with matching down1/down2 chains."""
    from ..engine.database import Database

    db = Database()
    for i in range(depth):
        pred = "up1" if i % 2 == 0 else "up2"
        db.add_fact(pred, generators.node_name("x", i),
                    generators.node_name("x", i + 1))
    for i in range(depth + 1):
        db.add_fact("flat", generators.node_name("x", i),
                    generators.node_name("y", i))
    for i in range(depth):
        pred = "down1" if i % 2 == 0 else "down2"
        db.add_fact(pred, generators.node_name("y", i + 1),
                    generators.node_name("y", i))
    return _rename_source(db, generators.node_name("x", 0)), "a"


def shared_vars_chain(depth=10):
    """Example-4-shaped data scaled to a chain of alternating rules."""
    from ..engine.database import Database

    db = Database()
    for i in range(depth):
        if i % 2 == 0:
            db.add_fact("up1", generators.node_name("x", i),
                        generators.node_name("x", i + 1), i)
        else:
            db.add_fact("up2", generators.node_name("x", i),
                        generators.node_name("x", i + 1))
    db.add_fact("flat", generators.node_name("x", depth),
                generators.node_name("y", depth))
    for i in range(depth, 0, -1):
        if (i - 1) % 2 == 0:
            db.add_fact("down1", generators.node_name("y", i),
                        generators.node_name("y", i - 1), i - 1)
            # A decoy arc with the wrong shared value: must not fire.
            db.add_fact("down1", generators.node_name("y", i),
                        generators.node_name("z", i - 1), i + 99)
        else:
            db.add_fact("down2", generators.node_name("y", i),
                        generators.node_name("y", i - 1),
                        generators.node_name("x", i - 1))
    return _rename_source(db, generators.node_name("x", 0)), "a"


def example4_db_a():
    from ..engine.database import Database

    return Database.from_text("""
        up1(a, b, 1). flat(b, c). down1(c, d, 2). down1(c, e, 1).
    """), "a"


def example4_db_b():
    from ..engine.database import Database

    return Database.from_text("""
        up2(a, b). flat(b, c). down2(c, d, b). down2(c, e, a).
    """), "a"


def mixed_linear_chain(up_depth=8, down_depth=8):
    from ..engine.database import Database

    db = Database()
    db.add_facts(generators.chain(up_depth, "up", "x"))
    for i in range(up_depth + 1):
        db.add_fact("flat", generators.node_name("x", i),
                    generators.node_name("y", 0))
    db.add_facts(generators.chain(down_depth, "down", "y"))
    return _rename_source(db, generators.node_name("x", 0)), "a"


def right_linear_chain(depth=16):
    from ..engine.database import Database

    db = Database()
    db.add_facts(generators.chain(depth, "up", "x"))
    for i in range(depth + 1):
        db.add_fact("flat", generators.node_name("x", i),
                    generators.node_name("y", i))
    return _rename_source(db, generators.node_name("x", 0)), "a"


def left_linear_chain(depth=16):
    from ..engine.database import Database

    db = Database()
    db.add_fact("flat", "a", generators.node_name("y", 0))
    db.add_facts(generators.chain(depth, "down", "y"))
    return db, "a"


def sg_cylinder(width=4, height=8):
    """Same generation over mirrored Bancilhon-Ramakrishnan cylinders.

    Exponential path counts with uniform path lengths — counting's
    best non-tree case (experiment S1).
    """
    from ..engine.database import Database

    db = Database()
    facts, first, last = generators.cylinder(width, height, "up", "u")
    db.add_facts(facts)
    down_facts, _d_first, d_last = generators.cylinder(
        width, height, "tmp", "d"
    )
    for _pred, (x, y) in down_facts:
        db.add_fact("down", y, x)
    for u_node, d_node in zip(last, d_last):
        db.add_fact("flat", u_node, d_node)
    return _rename_source(db, first[0]), "a"


def nonlinear_graph(nodes=20, arcs=40, seed=7):
    from ..engine.database import Database

    db = Database()
    db.add_facts(generators.random_graph(nodes, arcs, seed, "arc", "g"))
    db.add_fact("arc", "a", generators.node_name("g", 0))
    return db, "a"


def mutual_chain(depth=12):
    db, source = generators.sg_chain_db(depth)
    return _rename_source(db, source), "a"


WORKLOADS = {
    "sg_tree": Workload(
        "sg_tree", SG_TEXT, sg_tree,
        "Example 1 same generation over mirrored full trees",
        _ALL_ACYCLIC + ("classical_counting", "encoded_counting"),
    ),
    "sg_chain": Workload(
        "sg_chain", SG_TEXT, sg_chain,
        "Same generation over two chains with flat crossings",
        _ALL_ACYCLIC + ("classical_counting", "encoded_counting"),
    ),
    "sg_forest": Workload(
        "sg_forest", SG_TEXT, sg_forest,
        "Disjoint mirrored sg trees, one root per repeated query (S3)",
        _ALL_ACYCLIC + ("classical_counting", "encoded_counting"),
    ),
    "sg_cyclic": Workload(
        "sg_cyclic", SG_TEXT, sg_cyclic,
        "Example 5 shape: cyclic up relation",
        ("naive", "magic", "sup_magic", "qsq", "cyclic_counting",
         "magic_counting", "parallel"),
    ),
    "multi_rule": Workload(
        "multi_rule", MULTI_RULE_TEXT, multi_rule_chain,
        "Example 3: two recursive rules",
        # The [15] integer-encoded method also applies: multiple rules,
        # but no shared variables.
        _ALL_ACYCLIC + ("encoded_counting",),
    ),
    "shared_vars": Workload(
        "shared_vars", SHARED_VARS_TEXT, shared_vars_chain,
        "Example 4: variables shared between left and right parts",
        _ALL_ACYCLIC,
    ),
    "mixed_linear": Workload(
        "mixed_linear", MIXED_LINEAR_TEXT, mixed_linear_chain,
        "Example 6: right-linear + left-linear rules",
        _ALL_ACYCLIC,
    ),
    "right_linear": Workload(
        "right_linear", RIGHT_LINEAR_TEXT, right_linear_chain,
        "Pure right-linear program (Section 5)",
        # Classical counting applies too (one rule, no shared vars);
        # its index is simply never consulted by the empty right part.
        _ALL_ACYCLIC + ("classical_counting", "encoded_counting"),
    ),
    "left_linear": Workload(
        "left_linear", LEFT_LINEAR_TEXT, left_linear_chain,
        "Pure left-linear program (Section 5)",
        _ALL_ACYCLIC,
    ),
    "sg_cylinder": Workload(
        "sg_cylinder", SG_TEXT, sg_cylinder,
        "Same generation over mirrored B-R cylinders (experiment S1)",
        _ALL_ACYCLIC + ("classical_counting", "encoded_counting"),
    ),
    "nonlinear": Workload(
        "nonlinear", NONLINEAR_TEXT, nonlinear_graph,
        "Non-linear transitive closure: magic-set fallback only",
        ("naive", "magic", "sup_magic", "qsq"),
    ),
    "mutual": Workload(
        "mutual", MUTUAL_TEXT, mutual_chain,
        "Two mutually recursive predicates (even/odd generation)",
        ("naive", "magic", "sup_magic", "qsq", "extended_counting",
         "reduced_counting", "pointer_counting", "cyclic_counting",
         "magic_counting", "parallel"),
    ),
}


def get_workload(name):
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            "unknown workload %r; available: %s"
            % (name, ", ".join(sorted(WORKLOADS)))
        ) from None
