"""Synthetic database generators.

The paper reports no datasets (its evaluation is analytic, deferring
measurements to the LDL prototype), so the benchmark workloads follow
the standard deductive-database shapes of Bancilhon & Ramakrishnan [4]
— the comparison framework the paper cites for magic-vs-counting
measurements: full trees, chains, cylinders, random DAGs — plus the
shapes the paper's own arguments single out (shortcut chains where the
classical counting set is quadratic, cyclic graphs where it diverges).

All generators are deterministic: randomized ones take an explicit
``seed``.  Each returns a list of ``(predicate, values)`` fact pairs
ready for :meth:`repro.engine.database.Database.add_facts` (or a
:class:`~repro.engine.database.Database` for the ``*_db`` helpers).
"""

import random

from ..engine.database import Database


def node_name(prefix, index):
    """Stable node naming used across all generators."""
    return "%s%d" % (prefix, index)


def chain(length, pred="arc", prefix="n", start=0):
    """A simple path ``n0 -> n1 -> ... -> n<length>``."""
    return [
        (pred, (node_name(prefix, i + start),
                node_name(prefix, i + start + 1)))
        for i in range(length)
    ]


def cycle(length, pred="arc", prefix="n"):
    """A directed ring of ``length`` nodes."""
    facts = chain(length - 1, pred, prefix)
    facts.append((pred, (node_name(prefix, length - 1),
                         node_name(prefix, 0))))
    return facts


def full_tree(fanout, depth, pred="arc", prefix="t"):
    """A full ``fanout``-ary tree of the given depth.

    Arcs point from parent to child.  Returns ``(facts, root,
    leaves)``; nodes are numbered level order starting at the root.
    """
    facts = []
    root = node_name(prefix, 0)
    level = [0]
    counter = 1
    for _ in range(depth):
        next_level = []
        for parent in level:
            for _child in range(fanout):
                child = counter
                counter += 1
                facts.append(
                    (pred,
                     (node_name(prefix, parent), node_name(prefix, child)))
                )
                next_level.append(child)
        level = next_level
    leaves = [node_name(prefix, i) for i in level]
    return facts, root, leaves


def inverted_tree(fanout, depth, pred="arc", prefix="v"):
    """A full tree with arcs pointing from children to the root.

    Returns ``(facts, root, leaves)``.
    """
    facts, root, leaves = full_tree(fanout, depth, pred, prefix)
    inverted = [(pred, (b, a)) for _p, (a, b) in facts]
    return inverted, root, leaves


def shortcut_chain(length, pred="arc", prefix="s", stride=2):
    """A chain with shortcut arcs ``i -> i + stride``.

    Every node ``k`` is reachable from node 0 at many distinct
    distances (between ``ceil(k/stride)`` and ``k``), so the classical
    counting set holds Θ(n²) ``(node, index)`` tuples while the
    per-node pointer table holds n rows — the §3.4 size gap.
    """
    facts = chain(length, pred, prefix)
    for i in range(0, length - stride + 1):
        facts.append(
            (pred, (node_name(prefix, i), node_name(prefix, i + stride)))
        )
    return facts


def cylinder(width, height, pred="arc", prefix="c"):
    """The Bancilhon-Ramakrishnan cylinder: ``height`` layers of
    ``width`` nodes; node ``(i, j)`` points at ``(i+1, j)`` and
    ``(i+1, (j+1) mod width)``.

    Returns ``(facts, first_layer, last_layer)``.
    """

    def name(i, j):
        return "%s%d_%d" % (prefix, i, j)

    facts = []
    for i in range(height):
        for j in range(width):
            facts.append((pred, (name(i, j), name(i + 1, j))))
            facts.append((pred, (name(i, j), name(i + 1, (j + 1) % width))))
    first = [name(0, j) for j in range(width)]
    last = [name(height, j) for j in range(width)]
    return facts, first, last


def random_dag(nodes, arcs, seed, pred="arc", prefix="d"):
    """A random DAG: ``arcs`` distinct arcs ``i -> j`` with ``i < j``."""
    rng = random.Random(seed)
    chosen = set()
    limit = nodes * (nodes - 1) // 2
    arcs = min(arcs, limit)
    while len(chosen) < arcs:
        i = rng.randrange(nodes - 1)
        j = rng.randrange(i + 1, nodes)
        chosen.add((i, j))
    return [
        (pred, (node_name(prefix, i), node_name(prefix, j)))
        for i, j in sorted(chosen)
    ]


def random_graph(nodes, arcs, seed, pred="arc", prefix="g"):
    """A random directed graph (cycles allowed, no self-loops)."""
    rng = random.Random(seed)
    chosen = set()
    limit = nodes * (nodes - 1)
    arcs = min(arcs, limit)
    while len(chosen) < arcs:
        i = rng.randrange(nodes)
        j = rng.randrange(nodes)
        if i != j:
            chosen.add((i, j))
    return [
        (pred, (node_name(prefix, i), node_name(prefix, j)))
        for i, j in sorted(chosen)
    ]


def chain_with_back_arcs(length, back_arcs, pred="arc", prefix="b"):
    """A chain plus explicit back arcs ``(i, j)`` with ``j <= i``."""
    facts = chain(length, pred, prefix)
    for i, j in back_arcs:
        facts.append(
            (pred, (node_name(prefix, i), node_name(prefix, j)))
        )
    return facts


def sg_tree_db(fanout, depth, flat_pairs=None, up="up", flat="flat",
               down="down"):
    """A same-generation database over two mirrored trees.

    ``up`` arcs descend tree ``A`` from the root (the query constant),
    ``flat`` connects each leaf of ``A`` to the same-position leaf of a
    second tree ``B``, and ``down`` arcs ascend ``B`` from its leaves.
    Answers of ``sg(rootA, Y)`` are the nodes of ``B`` at the root
    generation.

    Returns ``(db, root)``.
    """
    facts_a, root_a, leaves_a = full_tree(fanout, depth, up, "a")
    facts_b, _root_b, leaves_b = full_tree(fanout, depth, "tmp", "b")
    db = Database()
    db.add_facts(facts_a)
    for _pred, (parent, child) in facts_b:
        db.add_fact(down, child, parent)
    if flat_pairs is None:
        flat_pairs = zip(leaves_a, leaves_b)
    for x, y in flat_pairs:
        db.add_fact(flat, x, y)
    return db, root_a


def sg_chain_db(depth, up="up", flat="flat", down="down"):
    """A same-generation database over two chains of ``depth`` arcs.

    Every prefix length has a flat crossing, so answers exist at all
    generations.  Returns ``(db, source)``.
    """
    db = Database()
    db.add_facts(chain(depth, up, "x"))
    db.add_facts(chain(depth, down, "y"))
    for i in range(depth + 1):
        db.add_fact(flat, node_name("x", i), node_name("y", i))
    return db, node_name("x", 0)


def sg_cyclic_db(cycle_length, down_length, up="up", flat="flat",
                 down="down"):
    """Example-5-style cyclic database, scaled.

    The ``up`` relation is a chain feeding a cycle of ``cycle_length``
    nodes; ``flat`` crosses from the cycle entry; ``down`` is a chain
    of ``down_length`` arcs, so answers appear at every generation the
    cycle can produce.  Returns ``(db, source)``.
    """
    db = Database()
    db.add_fact(up, "src", node_name("k", 0))
    for i in range(cycle_length - 1):
        db.add_fact(up, node_name("k", i), node_name("k", i + 1))
    db.add_fact(up, node_name("k", cycle_length - 1), node_name("k", 0))
    db.add_fact(flat, node_name("k", 0), node_name("w", 0))
    for i in range(down_length):
        db.add_fact(down, node_name("w", i), node_name("w", i + 1))
    return db, "src"


def duplication_dag_db(levels, width, extra_parents, seed, up="up",
                       flat="flat", down="down"):
    """A same-generation database with tunable path duplication.

    The ``up`` graph is a layered DAG: every node of layer ``i+1`` has
    one chain parent in layer ``i`` plus ``extra_parents`` random extra
    parents in layer ``i``.  Higher ``extra_parents`` means more
    distinct source-to-node paths, which is the regime where the
    counting method loses its edge over magic sets [4, 11].

    Returns ``(db, source)``.
    """
    rng = random.Random(seed)
    db = Database()

    def name(side, level, j):
        return "%s%d_%d" % (side, level, j)

    for side, pred, flip in (("u", up, False), ("d", down, True)):
        for level in range(levels):
            for j in range(width):
                parents = {j}
                for _ in range(extra_parents):
                    parents.add(rng.randrange(width))
                for parent in parents:
                    a = name(side, level, parent)
                    b = name(side, level + 1, j)
                    if flip:
                        db.add_fact(pred, b, a)
                    else:
                        db.add_fact(pred, a, b)
    # Source fans into layer 0 of the up side.
    for j in range(width):
        db.add_fact(up, "root", name("u", 0, j))
        db.add_fact(down, name("d", 0, j), "sink")
    for j in range(width):
        db.add_fact(flat, name("u", levels, j), name("d", levels, j))
    return db, "root"
