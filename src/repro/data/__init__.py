"""Synthetic data generators and canonical workloads."""

from . import generators
from .workloads import (
    WORKLOADS,
    Workload,
    forest_bindings,
    forest_root,
    get_workload,
    poison_forest,
    sg_forest,
)

__all__ = [
    "WORKLOADS",
    "Workload",
    "forest_bindings",
    "forest_root",
    "generators",
    "get_workload",
    "poison_forest",
    "sg_forest",
]
