"""Synthetic data generators and canonical workloads."""

from . import generators
from .workloads import WORKLOADS, Workload, get_workload

__all__ = ["WORKLOADS", "Workload", "generators", "get_workload"]
