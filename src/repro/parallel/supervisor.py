"""Worker supervision for the self-healing sharded fixpoint.

PR 9's executor treated any worker failure as fatal to the whole
parallel attempt: one ``WorkerCrashError`` and the resilient chain
re-ran the query serially from scratch, throwing away every completed
round.  The counting method's phase structure makes rounds natural
recovery points — the deltas exchanged at a barrier are a complete,
consistent description of per-shard progress — so this module gives
the coordinator everything it needs to repair the pool *in place* and
lose at most one round of work:

* :class:`RecoveryPolicy` — which failures to repair, how often, and
  how aggressively to chase stragglers.  ``mode="reassign"`` rehashes
  a dead worker's shards onto the survivors, ``mode="respawn"`` forks
  a replacement and rebuilds its shard state from the checkpoint,
  ``mode="serial"`` restores the PR 9 behaviour (fail the attempt,
  let the resilient chain degrade).

* :class:`RoundCheckpoint` — the coordinator-side barrier state: the
  routed per-worker delta portions of the in-flight round (already
  columnar ``to_bytes`` blobs — the routing currency *is* the
  checkpoint format) plus the per-relation epochs of every derived
  relation at the barrier.  ``to_bytes``/``from_bytes`` give the
  optional spill path: with ``RecoveryPolicy(spill=True)`` the
  checkpoint round-trips through bytes every round, so the in-memory
  form is provably equivalent to an on-disk one.

* :class:`Supervisor` — liveness bookkeeping and the repair budget.
  Workers heartbeat on a dedicated pipe; the supervisor tracks the
  last beat per slot, keeps a window of completed round times for the
  robust straggler threshold (a multiple of the median), records every
  failure and repair as a :class:`RepairEvent`, and enforces
  ``max_repairs``.

The supervisor never touches processes or pipes itself — the executor
owns the pool mechanics and consults the supervisor for *decisions*
(is this slot hung?  is it a straggler?  may I repair again?), which
keeps every policy number in one inspectable, testable object.

Invariant the whole layer is built around: recovery must never change
answers or the merged :class:`~repro.engine.instrumentation.EvalStats`
at any crash point.  Repairs only ever re-execute the failed worker's
portion of the in-flight round on a peer, a replacement, or the
coordinator itself; every derivation occurrence is still integrated
exactly once, so the differential matrix holds at every barrier index.
"""

import pickle
import time

#: Recovery modes a policy may select.
RECOVERY_MODES = ("reassign", "respawn", "serial")


class RecoveryPolicy:
    """How the coordinator responds to worker failures.

    Parameters
    ----------
    mode : str
        ``"reassign"`` (default) — rehash the dead worker's shards onto
        the survivors and re-route its in-flight delta portion;
        ``"respawn"`` — fork a replacement into the same slot and
        rebuild its shard state from the spawn payload plus the
        replicate log; ``"serial"`` — no in-place repair, fail the
        parallel attempt with the typed error (PR 9 behaviour).
    max_repairs : int
        Repair allowance per evaluation.  Once spent, the next failure
        raises :class:`~repro.errors.RecoveryExhaustedError` carrying
        the repair log — degrade-to-serial is the last resort, not the
        first response.
    heartbeat_interval : float
        Seconds between worker heartbeats (a dedicated pipe beside the
        data channel, fed by a daemon thread in each worker).
    liveness_timeout : float
        Heartbeat silence tolerated while the process is *alive* before
        the slot is declared hung — catches wedged processes (SIGSTOP,
        a C-level deadlock) that ``is_alive`` can never see.
    barrier_timeout : float
        Longest a slot may sit on one barrier reply before it is
        declared hung even though its heartbeats still flow — catches a
        stuck round (the main loop sleeping forever) on deadline-less
        budgets.
    straggler_multiple / straggler_min_seconds : float
        Speculative re-execution triggers once a slot's wait exceeds
        ``max(straggler_min_seconds, straggler_multiple * median)`` of
        the completed round times observed so far.  The median is the
        robust centre — one slow round never drags the threshold up.
    speculate : bool
        Master switch for speculative straggler re-execution.
    spill : bool
        Round-trip every :class:`RoundCheckpoint` through its
        ``to_bytes`` encoding (the columnar spill path) instead of
        keeping live objects.
    """

    __slots__ = ("mode", "max_repairs", "heartbeat_interval",
                 "liveness_timeout", "barrier_timeout",
                 "straggler_multiple", "straggler_min_seconds",
                 "speculate", "spill")

    def __init__(self, mode="reassign", max_repairs=2,
                 heartbeat_interval=0.1, liveness_timeout=2.0,
                 barrier_timeout=120.0, straggler_multiple=6.0,
                 straggler_min_seconds=0.5, speculate=True, spill=False):
        if mode not in RECOVERY_MODES:
            raise ValueError(
                "unknown recovery mode %r; expected one of %s"
                % (mode, ", ".join(RECOVERY_MODES))
            )
        if max_repairs < 0:
            raise ValueError("max_repairs must be >= 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if liveness_timeout <= heartbeat_interval:
            raise ValueError(
                "liveness_timeout must exceed heartbeat_interval"
            )
        if barrier_timeout <= 0:
            raise ValueError("barrier_timeout must be positive")
        if straggler_multiple < 1.0:
            raise ValueError("straggler_multiple must be >= 1")
        if straggler_min_seconds < 0:
            raise ValueError("straggler_min_seconds must be >= 0")
        self.mode = mode
        self.max_repairs = max_repairs
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.barrier_timeout = barrier_timeout
        self.straggler_multiple = straggler_multiple
        self.straggler_min_seconds = straggler_min_seconds
        self.speculate = speculate
        self.spill = spill

    @classmethod
    def coerce(cls, value):
        """``None`` -> default policy, mode string -> policy, policy
        -> itself.  The single entry point every knob (strategy
        options, ``FallbackPolicy``, the service, the CLI) funnels
        through."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(
            "recovery must be a RecoveryPolicy, a mode string, or None"
        )

    def as_dict(self):
        return {
            "mode": self.mode,
            "max_repairs": self.max_repairs,
            "barrier_timeout": self.barrier_timeout,
            "liveness_timeout": self.liveness_timeout,
            "straggler_multiple": self.straggler_multiple,
            "speculate": self.speculate,
            "spill": self.spill,
        }

    def __repr__(self):
        return "RecoveryPolicy(%s, max_repairs=%d%s)" % (
            self.mode, self.max_repairs,
            ", speculate" if self.speculate else "",
        )


class RepairEvent:
    """One recovery-relevant incident: a failure, a repair, or a
    speculative win."""

    __slots__ = ("kind", "worker", "round_index", "seconds", "detail")

    def __init__(self, kind, worker, round_index, seconds=0.0,
                 detail=""):
        self.kind = kind
        self.worker = worker
        self.round_index = round_index
        self.seconds = seconds
        self.detail = detail

    def as_dict(self):
        return {
            "kind": self.kind,
            "worker": self.worker,
            "round": self.round_index,
            "seconds": self.seconds,
            "detail": self.detail,
        }

    def __repr__(self):
        return "RepairEvent(%s, worker=%d, round=%d)" % (
            self.kind, self.worker, self.round_index
        )


class RoundCheckpoint:
    """Barrier-consistent recovery state for one in-flight round.

    ``portions`` maps pool slot -> ``{predicate key: columnar blob}``
    — exactly the routed delta the coordinator shipped at the barrier,
    already in the ``ColumnStore.to_bytes`` wire format, so rebuilding
    a lost worker's round input is a dictionary lookup, not a
    re-encode.  ``epochs`` snapshots each derived relation's mutation
    epoch at the barrier: repairs assert progress monotonicity against
    it, and the spill format carries it so an on-disk checkpoint is as
    self-describing as the in-memory one.
    """

    __slots__ = ("round_index", "portions", "epochs")

    def __init__(self, round_index, portions, epochs):
        self.round_index = round_index
        self.portions = {
            slot: dict(blobs) for slot, blobs in portions.items()
        }
        self.epochs = dict(epochs)

    def portion(self, slot):
        """The routed delta blobs slot was sent this round."""
        return self.portions.get(slot, {})

    def to_bytes(self):
        """Spill encoding: the blobs are already columnar bytes, the
        skeleton (slots, keys, epochs) pickles around them."""
        return pickle.dumps(
            (self.round_index, self.portions, self.epochs),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, data):
        round_index, portions, epochs = pickle.loads(data)
        return cls(round_index, portions, epochs)

    def __repr__(self):
        rows = sum(len(blobs) for blobs in self.portions.values())
        return "RoundCheckpoint(round=%d, %d slots, %d portions)" % (
            self.round_index, len(self.portions), rows
        )


class Supervisor:
    """Liveness bookkeeping and the repair budget for one evaluation.

    Owned by the coordinator; consulted (never in charge of I/O) from
    the barrier wait loop.  All thresholds come from the
    :class:`RecoveryPolicy`; all timing flows through the injectable
    ``clock`` so tests drive deterministic failures.
    """

    #: Completed round times kept for the straggler median.
    _WINDOW = 32

    def __init__(self, policy, clock=None):
        self.policy = policy
        self._clock = clock if clock is not None else time.monotonic
        self._last_beat = {}
        self._round_times = []
        self.events = []
        self.crashes = 0
        self.hangs = 0
        self.reassignments = 0
        self.respawns = 0
        self.speculative_wins = 0
        self.rounds_replayed = 0
        self.repairs = 0
        self.recovery_seconds = 0.0
        self.checkpoints_retained = 0
        self.checkpoint_bytes = 0

    # -- heartbeats and round timing ---------------------------------

    def beat(self, slot, now=None):
        """Record a heartbeat (or any traffic) from ``slot``."""
        self._last_beat[slot] = self._clock() if now is None else now

    def forget(self, slot):
        self._last_beat.pop(slot, None)

    def observe_round_time(self, seconds):
        """Feed one completed reply's wall time into the median window."""
        self._round_times.append(seconds)
        if len(self._round_times) > self._WINDOW:
            del self._round_times[0]

    def median_round_time(self):
        if not self._round_times:
            return None
        ordered = sorted(self._round_times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def straggler_deadline(self):
        """Seconds of barrier wait after which a slot is a straggler,
        or ``None`` while there is no history to be robust against."""
        if not self.policy.speculate:
            return None
        median = self.median_round_time()
        if median is None:
            return None
        return max(
            self.policy.straggler_min_seconds,
            self.policy.straggler_multiple * median,
        )

    # -- failure classification --------------------------------------

    def diagnose(self, slot, waited, alive, now=None):
        """Classify a pending slot: ``None`` (healthy), ``"crash"``,
        or ``"hang"``.

        ``waited`` is seconds since the slot's current head message
        started being processed; ``alive`` the process's liveness.
        Hang covers both silence (no heartbeat within
        ``liveness_timeout`` while alive) and overstay (the barrier
        deadline passed with heartbeats still flowing).
        """
        if not alive:
            return "crash"
        now = self._clock() if now is None else now
        last = self._last_beat.get(slot)
        if last is not None and \
                now - last > self.policy.liveness_timeout:
            return "hang"
        if waited > self.policy.barrier_timeout:
            return "hang"
        return None

    # -- the repair budget -------------------------------------------

    def allow_repair(self):
        return self.repairs < self.policy.max_repairs

    def record(self, kind, worker, round_index, seconds=0.0, detail=""):
        event = RepairEvent(kind, worker, round_index, seconds, detail)
        self.events.append(event)
        if kind == "crash":
            self.crashes += 1
        elif kind == "hang":
            self.hangs += 1
        elif kind == "reassign":
            self.reassignments += 1
        elif kind == "respawn":
            self.respawns += 1
        elif kind == "speculative_win":
            self.speculative_wins += 1
        return event

    def note_checkpoint(self, checkpoint, spilled=None):
        self.checkpoints_retained += 1
        if spilled is not None:
            self.checkpoint_bytes += len(spilled)

    def event_dicts(self):
        return [event.as_dict() for event in self.events]

    def as_dict(self):
        """The ``extras["recovery"]`` block: policy plus outcome."""
        return {
            "policy": self.policy.as_dict(),
            "crashes": self.crashes,
            "hangs": self.hangs,
            "reassignments": self.reassignments,
            "respawns": self.respawns,
            "speculative_wins": self.speculative_wins,
            "rounds_replayed": self.rounds_replayed,
            "repairs": self.repairs,
            "recovery_seconds": self.recovery_seconds,
            "checkpoints": self.checkpoints_retained,
            "checkpoint_bytes": self.checkpoint_bytes,
            "events": self.event_dicts(),
        }

    def __repr__(self):
        return "Supervisor(%s, %d repairs, %d events)" % (
            self.policy.mode, self.repairs, len(self.events)
        )
