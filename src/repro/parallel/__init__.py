"""Data-parallel sharded fixpoint evaluation (plan/execute split).

:mod:`repro.parallel.plan` computes an explicit
:class:`~repro.parallel.plan.PartitionedPlan` for a query — partition
columns, shard-vs-broadcast decisions, delta-exchange schedule — and
:mod:`repro.parallel.executor` runs it over a persistent
``multiprocessing`` worker pool.  :mod:`repro.parallel.counting`
parallelizes phase 1 of the counting method (the left-graph DFS) with
a byte-identical serial replay.  See ``docs/api.md`` ("Parallel
evaluation") for the worker lifecycle and fallback semantics.
"""

from .executor import (
    ParallelEngine,
    PlanViolationError,
    RecoveryExhaustedError,
    WorkerCrashError,
    WorkerHungError,
)
from .plan import (
    DEFAULT_BROADCAST_ROWS,
    PartitionedPlan,
    plan_partitions,
    shard_of,
    shard_rows,
)
from .supervisor import (
    RECOVERY_MODES,
    RecoveryPolicy,
    RepairEvent,
    RoundCheckpoint,
    Supervisor,
)

__all__ = [
    "DEFAULT_BROADCAST_ROWS",
    "ParallelEngine",
    "PartitionedPlan",
    "PlanViolationError",
    "RECOVERY_MODES",
    "RecoveryExhaustedError",
    "RecoveryPolicy",
    "RepairEvent",
    "RoundCheckpoint",
    "Supervisor",
    "WorkerCrashError",
    "WorkerHungError",
    "plan_partitions",
    "shard_of",
    "shard_rows",
]
