"""Multiprocess executor for a :class:`~repro.parallel.plan.PartitionedPlan`.

The executor implements delta-partitioned semi-naive evaluation for
linear programs:

* The **coordinator** (this process) owns the authoritative derived
  relations.  It evaluates each clique's exit rules itself against the
  full database, then drives the recursive fixpoint: every global
  round it routes the current delta facts to their owner workers,
  waits at the barrier, and integrates the derivations the workers
  send back (counting ``facts_derived`` / ``facts_duplicate`` exactly
  once per derivation occurrence).

* Each **worker** holds the shards and broadcast replicas its plan
  entry assigned, plus replicas of lower-clique IDB relations.  Per
  round it fires every recursive rule once per routed delta fact —
  binding the recursive atom to the fact and joining the rest of the
  body locally — and ships the derived rows (with per-row
  multiplicities, so duplicate derivations still reach the
  coordinator's counters) back over the columnar
  ``ColumnStore.to_bytes`` fast path.

Because every delta fact is processed by exactly one worker and every
derivation occurrence is integrated exactly once, the merged
:class:`~repro.engine.instrumentation.EvalStats` of a ``W``-worker run
equals the same engine's single-process run for any ``W`` — the
property the differential suites and the scaling benchmark assert.
Intern pools are synchronized once at pool start (workers replay the
coordinator's dense value table in order, so ids are stable
thereafter); all shard and delta traffic is raw int64 columns.

Any worker failure — a typed error shipped back, a SIGKILLed process,
a broken pipe — surfaces as an :class:`~repro.errors.EvaluationError`
subtype, so a resilient fallback chain degrades to a serial strategy
with a typed attempt record instead of hanging or returning partial
answers.
"""

import multiprocessing
import pickle
import time
from array import array

from ..datalog.analysis import ProgramAnalysis
from ..datalog.terms import Constant
from ..datalog.unify import match_value, resolve
from ..engine import faults
from ..engine.columnar import ColumnStore
from ..engine.database import Database
from ..engine.faults import FaultInjector
from ..engine.fixpoint import goal_filter, project_free
from ..engine.guard import ResourceBudget
from ..engine.instrumentation import EvalStats
from ..engine.interning import InternPool
from ..engine.join import evaluate_body, evaluate_rule, ground_head
from ..engine.relation import Relation
from ..errors import DeadlineExceeded, EvaluationError, ReproError
from .plan import plan_partitions, shard_of, shard_rows

#: Seconds between liveness checks while waiting at a round barrier.
_POLL_INTERVAL = 0.05

#: Default barrier patience when no budget bounds the wait.  Generous —
#: it only matters when a worker dies *silently*, and process death is
#: detected by ``is_alive`` within one poll interval anyway.
_BARRIER_TIMEOUT = 600.0


class WorkerCrashError(EvaluationError):
    """A pool worker died or its channel broke mid-evaluation.

    An :class:`EvaluationError`, so the resilient runner treats the
    crash like any other strategy failure and degrades to the next
    (serial) strategy in the chain.
    """


class PlanViolationError(EvaluationError):
    """A worker observed state the partition plan promised impossible.

    The canonical case is a derived value missing from the worker's
    intern pool: the planner guarantees all derivable values are known
    at pool start, so a miss means the plan mis-classified the program
    and the only safe move is to abandon the parallel attempt.
    """


# ----------------------------------------------------------------- #
# encoding helpers                                                   #
# ----------------------------------------------------------------- #


def _encode_rows(pool, rows, arity, intern=False):
    """Value rows -> columnar int64 bytes via the shared intern pool.

    ``intern=True`` is the coordinator's pre-synchronization mode: it
    may still allocate fresh ids (the legacy row backend never interns
    on insert, so the pool can be cold).  After the pool ships, every
    encode must find its values already known — a miss there is a plan
    violation, not a cue to allocate an id the workers don't have.

    Encoding runs column-at-a-time: each column is one C-level
    ``map`` into an ``array('q')``, which is what keeps the exchange
    overhead of a sharded round a small fraction of its join work.
    """
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    lookup = pool.ident if intern else pool.peek
    try:
        columns = tuple(
            array("q", map(lookup, (row[position] for row in rows)))
            for position in range(arity)
        )
    except TypeError:
        # peek returned None for a value the plan promised was known.
        raise PlanViolationError(
            "value not in the synchronized intern pool"
        )
    return ColumnStore(arity, columns).to_bytes()


def _decode_rows(pool, data):
    """Columnar bytes -> list of value rows.

    The inverse fast path of :func:`_encode_rows`: every column is one
    C-level ``map`` through the pool's dense value table, zipped back
    into row tuples.
    """
    store = ColumnStore.from_bytes(data)
    columns = store._columns
    if not columns:
        return []
    values = pool._values
    return list(zip(*[map(values.__getitem__, col) for col in columns]))


def _relation_rows(relation):
    """All rows of a relation in insertion order (both backends).

    Epoch-pinned snapshot views (the serving layer's generations) carry
    no ``_log`` of their own; materializing the frozen relation first
    yields the same insertion-ordered log truncated at the pin.
    """
    log = getattr(relation, "_log", None)
    if log is None:
        log = relation._rel()._log
    return list(log)


def _bind_fact(atom, row):
    """Substitution binding ``atom`` to the ground ``row``, or None."""
    subst = {}
    for arg, value in zip(atom.args, row):
        resolved = resolve(arg, subst)
        if isinstance(resolved, Constant):
            if resolved.value != value:
                return None
        else:
            subst = match_value(resolved, value, subst)
            if subst is None:
                return None
    return subst


def _rule_tables(program):
    """Per delta-predicate dispatch tables for the recursive rules.

    Maps each predicate key to the list of ``(rule, recursive atom,
    rest-of-body)`` entries whose recursive atom has that predicate;
    ``rest`` preserves the original literal order minus the recursive
    atom, so join scan order (and therefore ``tuples_scanned``)
    matches a single-process evaluation of the same rule.
    """
    analysis = ProgramAnalysis(program)
    tables = {}
    for clique in analysis.components:
        for rule in clique.recursive_rules:
            left, rec, right = clique.split_body(rule)
            tables.setdefault(rec.key, []).append(
                (rule, rec, tuple(left) + tuple(right))
            )
    return tables


# ----------------------------------------------------------------- #
# worker side                                                        #
# ----------------------------------------------------------------- #


class _WorkerState:
    """Everything one pool worker keeps between rounds."""

    def __init__(self, index, payload):
        self.index = index
        self.pool = InternPool()
        for value in payload["values"]:
            self.pool.ident(value)
        self.relations = {}
        for key, (arity, blob) in sorted(payload["relations"].items()):
            relation = Relation(key[0], arity, pool=self.pool)
            for row in _decode_rows(self.pool, blob):
                relation.add(row)
            self.relations[key] = relation
        # Empty replicas for every lower-clique IDB relation a
        # recursive rule looks up; filled by "replicate" messages.
        for key in payload["replicas"]:
            self.relations.setdefault(
                key, Relation(key[0], key[1], pool=self.pool)
            )
        self.rules = _rule_tables(payload["program"])
        self.stats = EvalStats()
        timeout = payload.get("timeout")
        self.budget = (
            ResourceBudget(timeout=timeout) if timeout is not None
            else None
        )

    def _resolve(self, _index, atom):
        relation = self.relations.get(atom.key)
        if relation is None:
            raise PlanViolationError(
                "worker %d has no replica of %s/%d"
                % (self.index, atom.key[0], atom.key[1])
            )
        return relation

    def process_round(self, deltas):
        """Fire recursive rules for the routed delta facts.

        Returns the per-round stats delta and, per head predicate, the
        derived rows with their derivation multiplicities — duplicates
        are *not* collapsed silently, the coordinator charges them to
        ``facts_duplicate`` exactly as a single-process run would.
        """
        round_stats = EvalStats()
        derived = {}
        for pred_key in sorted(deltas):
            rows = _decode_rows(self.pool, deltas[pred_key])
            entries = self.rules.get(pred_key, ())
            for row in rows:
                for rule, rec, rest in entries:
                    round_stats.rule_firings += 1
                    subst = _bind_fact(rec, row)
                    if subst is None:
                        continue
                    for result in evaluate_body(
                        rest, self._resolve, subst, round_stats
                    ):
                        head_row = ground_head(rule.head, result)
                        bucket = derived.setdefault(rule.head.key, {})
                        bucket[head_row] = bucket.get(head_row, 0) + 1
        self.stats.merge(round_stats)
        if self.budget is not None:
            self.budget.check(self.stats)
        faults.fire("round", self.stats)
        out = {
            key: (
                _encode_rows(self.pool, bucket.keys(), key[1]),
                array("q", bucket.values()).tobytes(),
            )
            for key, bucket in derived.items()
        }
        return round_stats, out

    def replicate(self, blobs):
        """Install post-clique replicas of lower-clique IDB relations."""
        for key, (arity, blob) in sorted(blobs.items()):
            relation = self.relations.get(key)
            if relation is None:
                relation = Relation(key[0], arity, pool=self.pool)
                self.relations[key] = relation
            for row in _decode_rows(self.pool, blob):
                relation.add(row)


def _worker_main(index, conn, payload):
    """Entry point of one pool process: a lockstep message loop."""
    import gc

    # A pool worker lives for one evaluation and exits.  Cyclic GC in
    # the child walks the whole fork-inherited heap (refcount writes
    # fault in copy-on-write pages of everything the coordinator ever
    # allocated), which can dwarf the worker's actual join work under
    # a large parent process; anything cyclic the worker allocates is
    # reclaimed by process exit anyway.
    gc.disable()
    injector = None
    try:
        # Under the fork start method the child inherits the
        # coordinator's *installed* injector (module global plus
        # patched Relation methods).  Uninstall it first: the worker
        # runs its own derived injector, seeded for this index.
        inherited = faults.active_injector()
        if inherited is not None:
            inherited.uninstall()
        spec = payload.get("faults")
        if spec is not None:
            injector = FaultInjector.from_spec(spec).derive(index)
            injector.install()
        state = _WorkerState(index, payload)
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        _send_error(conn, exc)
        return
    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "close":
                return
            try:
                if op == "round":
                    round_stats, derived = state.process_round(message[1])
                    conn.send(("ok", round_stats, derived))
                elif op == "replicate":
                    state.replicate(message[1])
                    conn.send(("ok", None, {}))
                else:
                    raise EvaluationError("unknown worker op %r" % (op,))
            except ReproError as exc:
                _send_error(conn, exc)
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        if injector is not None:
            injector.uninstall()


def _send_error(conn, exc):
    try:
        conn.send(("error", exc))
    except (pickle.PicklingError, TypeError, OSError):
        # Last resort: strip the payload rather than dying silently.
        try:
            conn.send(("error", EvaluationError(str(exc))))
        except OSError:
            pass


# ----------------------------------------------------------------- #
# coordinator side                                                   #
# ----------------------------------------------------------------- #


class _InlineWorker:
    """The pool-of-one used by serial mode: same code path, no IPC.

    Joins read the coordinator's database and derived relations
    directly — the single "shard" of every relation is the whole
    relation — so the serial baseline measures pure engine work with
    zero exchange overhead, which is exactly what the parallel run's
    speedup should be judged against.
    """

    def __init__(self, engine):
        self.engine = engine
        self.rules = _rule_tables(engine.query.program)

    def _resolve(self, _index, atom):
        relation = self.engine.derived.get(atom.key)
        if relation is not None:
            return relation
        return self.engine.db.get(atom.key)

    def process_round(self, deltas):
        round_stats = EvalStats()
        derived = {}
        for pred_key in sorted(deltas):
            entries = self.rules.get(pred_key, ())
            for row in deltas[pred_key]:
                for rule, rec, rest in entries:
                    round_stats.rule_firings += 1
                    subst = _bind_fact(rec, row)
                    if subst is None:
                        continue
                    for result in evaluate_body(
                        rest, self._resolve, subst, round_stats
                    ):
                        head_row = ground_head(rule.head, result)
                        bucket = derived.setdefault(rule.head.key, {})
                        bucket[head_row] = bucket.get(head_row, 0) + 1
        return round_stats, derived


class ParallelEngine:
    """Coordinator of one sharded fixpoint evaluation.

    ``workers=0`` (or ``inline=True``) selects serial mode: the same
    plan, rounds and counters with no child processes — the reference
    the multiprocess counters must match and the baseline the scaling
    benchmark compares against.
    """

    def __init__(self, query, db, workers=2, stats=None, budget=None,
                 plan=None, inline=False):
        if not isinstance(db, Database):
            raise TypeError("expected a Database")
        self.query = query
        self.db = db
        self.inline = inline or workers == 0
        self.workers = 0 if self.inline else max(1, workers)
        self.stats = stats if stats is not None else EvalStats()
        self.budget = budget
        self.plan = plan
        self.analysis = None
        self.derived = {}
        self.tuples = frozenset()
        self.answers = frozenset()
        self.plan_seconds = 0.0
        self.execute_seconds = 0.0
        self.barriers = 0
        self.exchange_bytes = 0
        self._pool = []  # [(process, conn)] in worker order

    # -- planning ----------------------------------------------------

    def _plan_phase(self):
        started = time.perf_counter()
        if self.plan is None:
            self.plan = plan_partitions(
                self.query, self.db, max(1, self.workers or 1)
            )
        # Intern every program and goal constant now: after the pool
        # synchronizes, no evaluation step may allocate a fresh id.
        pool = self.db.intern_pool
        atoms = [self.query.goal]
        for rule in self.query.program:
            atoms.append(rule.head)
            atoms.extend(rule.body_atoms())
        for atom in atoms:
            for arg in atom.args:
                if isinstance(arg, Constant):
                    pool.ident(arg.value)
        self.analysis = ProgramAnalysis(self.query.program)
        self.plan_seconds = time.perf_counter() - started

    # -- pool lifecycle ----------------------------------------------

    def _spawn_pool(self):
        pool_size = self.workers
        pool = self.db.intern_pool
        # Encode before snapshotting the value table: under the legacy
        # row backend inserts never intern, so shard encoding is what
        # assigns the dense ids the workers will replay.
        shard_blobs = [dict() for _ in range(pool_size)]
        for key, column in sorted(self.plan.sharded.items()):
            rows = _relation_rows(self.db.get(key))
            for index, shard in enumerate(
                shard_rows(rows, column, pool_size, pool)
            ):
                shard_blobs[index][key] = (
                    key[1], _encode_rows(pool, shard, key[1], intern=True)
                )
        for key in self.plan.broadcast:
            blob = _encode_rows(
                pool, _relation_rows(self.db.get(key)), key[1],
                intern=True,
            )
            for index in range(pool_size):
                shard_blobs[index][key] = (key[1], blob)
        # Coordinator-only base relations still feed delta rows through
        # the exit rounds, so their values must be in the shipped table
        # too (the columnar backend interns on insert; the legacy one
        # does not).
        shipped = set(self.plan.sharded) | set(self.plan.broadcast)
        ident_row = pool.ident_row
        for key in sorted(self.analysis.base_predicates()):
            if key in shipped:
                continue
            for row in _relation_rows(self.db.get(key)):
                ident_row(row)
        values = list(pool._values)
        replicas = sorted(
            key
            for keys in self.plan.replicate_after.values()
            for key in keys
        )
        injector = faults.active_injector()
        spec = injector.spec() if injector is not None else None
        timeout = None
        if self.budget is not None and not self.budget.is_unlimited():
            remaining = self.budget.remaining()
            if remaining is not None:
                timeout = remaining
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        for index in range(pool_size):
            parent, child = context.Pipe(duplex=True)
            payload = {
                "values": values,
                "relations": shard_blobs[index],
                "replicas": replicas,
                "program": self.query.program,
                "timeout": timeout,
                "faults": spec,
            }
            process = context.Process(
                target=_worker_main,
                args=(index, child, payload),
                daemon=True,
            )
            process.start()
            child.close()
            self._pool.append((process, parent))

    def _shutdown_pool(self):
        for process, conn in self._pool:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for process, conn in self._pool:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
            conn.close()
        self._pool = []

    def _send(self, index, message):
        process, conn = self._pool[index]
        try:
            conn.send(message)
        except (OSError, ValueError):
            raise WorkerCrashError(
                "worker %d unreachable (process %s)"
                % (index, "alive" if process.is_alive() else "dead"),
                stats=self.stats,
            )

    def _collect(self, index):
        """Receive one reply, converting death and silence into typed
        errors instead of hanging the barrier."""
        process, conn = self._pool[index]
        waited = 0.0
        while True:
            if conn.poll(_POLL_INTERVAL):
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashError(
                        "worker %d closed its channel mid-round"
                        % index,
                        stats=self.stats,
                    )
                if reply[0] == "error":
                    raise reply[1]
                return reply
            if not process.is_alive():
                raise WorkerCrashError(
                    "worker %d died mid-round (exit code %r)"
                    % (index, process.exitcode),
                    stats=self.stats,
                )
            waited += _POLL_INTERVAL
            if self.budget is not None and self.budget.expired():
                raise DeadlineExceeded(
                    "deadline passed waiting at a round barrier",
                    stats=self.stats,
                )
            if waited > _BARRIER_TIMEOUT:
                raise WorkerCrashError(
                    "worker %d silent for %.0fs at a round barrier"
                    % (index, waited),
                    stats=self.stats,
                )

    # -- evaluation --------------------------------------------------

    def _relation(self, key):
        relation = self.derived.get(key)
        if relation is None:
            relation = Relation(
                key[0], key[1], pool=self.db.intern_pool
            )
            self.derived[key] = relation
        return relation

    def _resolve(self, _index, atom):
        if atom.key in self.analysis.derived:
            return self._relation(atom.key)
        return self.db.get(atom.key)

    def _integrate(self, key, row, multiplicity, deltas, ids=None):
        """Count one derivation batch and extend the next delta.

        In multiprocess mode the delta lists carry *id* rows — the
        routing currency — so integration passes the ids it already
        has from the wire (``ids``) or encodes them once here; inline
        mode keeps value rows, its worker joins on values directly.
        """
        if self._relation(key).add(row):
            self.stats.facts_derived += 1
            self.stats.facts_duplicate += multiplicity - 1
            if self.inline:
                deltas.setdefault(key, []).append(row)
            else:
                if ids is None:
                    peek = self.db.intern_pool.peek
                    ids = tuple(peek(value) for value in row)
                deltas.setdefault(key, []).append(ids)
        else:
            self.stats.facts_duplicate += multiplicity

    def _round_boundary(self):
        self.stats.iterations += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        faults.fire("round", self.stats)

    def _exit_round(self, clique):
        """Evaluate a clique's exit rules on the coordinator."""
        deltas = {}
        for rule in clique.exit_rules:
            for row in evaluate_rule(rule, self._resolve, self.stats):
                self._integrate(rule.head.key, row, 1, deltas)
        self._round_boundary()
        return deltas

    def _route(self, deltas):
        """Split delta id rows across workers by their owner column.

        Routing and encoding are fused: the delta lists already hold
        id rows (see :meth:`_integrate`), so the owner comes straight
        from the partition column's id and the ids land directly in
        the owner's column arrays — no value lookups, no intermediate
        per-shard row lists.
        """
        workers = self.workers
        routed = [dict() for _ in range(workers)]
        for key in sorted(deltas):
            column = self.plan.partition[key]
            arity = key[1]
            shards = [
                tuple(array("q") for _ in range(arity))
                for _ in range(workers)
            ]
            try:
                for ids in deltas[key]:
                    owner = shard_of(ids[column], workers)
                    for col, ident in zip(shards[owner], ids):
                        col.append(ident)
            except TypeError:
                raise PlanViolationError(
                    "delta value not in the synchronized intern pool"
                )
            for index, columns in enumerate(shards):
                if columns and len(columns[0]):
                    routed[index][key] = ColumnStore(
                        arity, columns
                    ).to_bytes()
        return routed

    def _recursive_rounds(self, inline_worker, deltas):
        """Drive rounds until every delta is empty (global fixpoint)."""
        while deltas:
            if inline_worker is not None:
                round_stats, derived = inline_worker.process_round(deltas)
                self.stats.merge(round_stats)
                deltas = {}
                for key in sorted(derived):
                    for row, count in derived[key].items():
                        self._integrate(key, row, count, deltas)
            else:
                routed = self._route(deltas)
                for index in range(self.workers):
                    for blob in routed[index].values():
                        self.exchange_bytes += len(blob)
                    self._send(index, ("round", routed[index]))
                replies = [
                    self._collect(index)
                    for index in range(self.workers)
                ]
                self.barriers += 1
                deltas = {}
                for _tag, round_stats, derived in replies:
                    self.stats.merge(round_stats)
                for _tag, _stats, derived in replies:
                    for key in sorted(derived):
                        blob, count_blob = derived[key]
                        self.exchange_bytes += len(blob)
                        store = ColumnStore.from_bytes(blob)
                        columns = store._columns
                        values = self.db.intern_pool._values
                        id_rows = (
                            list(zip(*columns)) if columns else []
                        )
                        rows = [
                            tuple(map(values.__getitem__, ids))
                            for ids in id_rows
                        ]
                        counts = array("q")
                        counts.frombytes(count_blob)
                        for row, ids, count in zip(
                            rows, id_rows, counts
                        ):
                            self._integrate(
                                key, row, count, deltas, ids=ids
                            )
            self._round_boundary()

    def _replicate(self, clique_index):
        keys = self.plan.replicate_after.get(clique_index, ())
        if not keys or self.inline:
            return
        pool = self.db.intern_pool
        blobs = {}
        for key in keys:
            rows = _relation_rows(self._relation(key))
            blobs[key] = (key[1], _encode_rows(pool, rows, key[1]))
        for index in range(self.workers):
            for _arity, blob in blobs.values():
                self.exchange_bytes += len(blob)
            self._send(index, ("replicate", blobs))
        for index in range(self.workers):
            self._collect(index)
        self.barriers += 1

    def run(self):
        """Evaluate to fixpoint; populates tuples/answers/stats."""
        self._plan_phase()
        started = time.perf_counter()
        inline_worker = _InlineWorker(self) if self.inline else None
        try:
            if not self.inline:
                self._spawn_pool()
            for clique_index, clique in enumerate(
                self.analysis.components
            ):
                deltas = self._exit_round(clique)
                if clique.is_recursive():
                    self._recursive_rounds(inline_worker, deltas)
                self._replicate(clique_index)
        finally:
            self._shutdown_pool()
            self.execute_seconds = time.perf_counter() - started
        goal = self.query.goal
        relation = self.derived.get(goal.key)
        if relation is None:
            relation = self.db.get(goal.key)
        self.tuples = frozenset(goal_filter(goal, relation))
        self.answers = frozenset(project_free(goal, self.tuples))
        return self

    def extras(self):
        """Deterministic run description for ExecutionResult extras."""
        return {
            "workers": self.workers,
            "barriers": self.barriers,
            "exchange_bytes": self.exchange_bytes,
            "phase_seconds": {
                "plan": self.plan_seconds,
                "execute": self.execute_seconds,
            },
            "plan": self.plan.as_dict() if self.plan else None,
        }
