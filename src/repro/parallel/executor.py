"""Multiprocess executor for a :class:`~repro.parallel.plan.PartitionedPlan`.

The executor implements delta-partitioned semi-naive evaluation for
linear programs:

* The **coordinator** (this process) owns the authoritative derived
  relations.  It evaluates each clique's exit rules itself against the
  full database, then drives the recursive fixpoint: every global
  round it routes the current delta facts to their owner workers,
  waits at the barrier, and integrates the derivations the workers
  send back (counting ``facts_derived`` / ``facts_duplicate`` exactly
  once per derivation occurrence).

* Each **worker** holds the shards and broadcast replicas its plan
  entry assigned, plus replicas of lower-clique IDB relations.  Per
  round it fires every recursive rule once per routed delta fact —
  binding the recursive atom to the fact and joining the rest of the
  body locally — and ships the derived rows (with per-row
  multiplicities, so duplicate derivations still reach the
  coordinator's counters) back over the columnar
  ``ColumnStore.to_bytes`` fast path.

Because every delta fact is processed by exactly one worker and every
derivation occurrence is integrated exactly once, the merged
:class:`~repro.engine.instrumentation.EvalStats` of a ``W``-worker run
equals the same engine's single-process run for any ``W`` — the
property the differential suites and the scaling benchmark assert.
Intern pools are synchronized once at pool start (workers replay the
coordinator's dense value table in order, so ids are stable
thereafter); all shard and delta traffic is raw int64 columns.

**Self-healing.**  Workers are stateless between rounds — their
relations change only on explicit ``reshard``/``replicate`` messages —
so the coordinator can repair the pool mid-fixpoint without replaying
history.  A :class:`~repro.parallel.supervisor.Supervisor` watches
per-worker heartbeat pipes beside the data channels and classifies
failures (dead process, silent-but-alive process, overstayed barrier);
the round's routed delta portions are retained as a barrier-consistent
:class:`~repro.parallel.supervisor.RoundCheckpoint`, so at most one
round of the failed worker's work is ever re-executed.  Under
``RecoveryPolicy(mode="reassign")`` the dead worker's shards are
rehashed onto the survivors (full replacement shards are shipped
*before* its checkpointed round portion is re-routed — pipe FIFO
ordering guarantees survivors finish their in-flight old-sharding work
first); under ``mode="respawn"`` a replacement is forked into the same
slot from the retained spawn payload plus the replicate log.  Slow
workers get speculative re-execution: once a slot's barrier wait
exceeds a robust multiple of the median round time, its portion is
re-issued (to an idle peer on broadcast-only plans, else re-executed
on the coordinator) and the first result wins — delta merge is
idempotent by multiplicity integration, and a discard group guarantees
exactly one twin's derivations and counters are taken.  Recovery never
changes answers or the merged ``EvalStats`` at any crash point.

Under ``mode="serial"`` (or once ``max_repairs`` is spent) a failure
surfaces as a typed, picklable :class:`~repro.errors.WorkerCrashError`
/ :class:`~repro.errors.WorkerHungError` /
:class:`~repro.errors.RecoveryExhaustedError`, so a resilient fallback
chain degrades to a serial strategy with the repair log on the attempt
record instead of hanging or returning partial answers.
"""

import multiprocessing
import pickle
import threading
import time
from array import array
from collections import deque
from multiprocessing import connection as _mp_connection

from ..datalog.analysis import ProgramAnalysis
from ..datalog.terms import Constant
from ..datalog.unify import match_value, resolve
from ..engine import faults
from ..engine.columnar import ColumnStore
from ..engine.database import Database
from ..engine.faults import FaultInjector, strip_worker_plans
from ..engine.fixpoint import goal_filter, project_free
from ..engine.guard import ResourceBudget
from ..engine.instrumentation import EvalStats
from ..engine.interning import InternPool
from ..engine.join import evaluate_body, evaluate_rule, ground_head
from ..engine.relation import EmptyRelation, Relation
from ..errors import (
    DeadlineExceeded,
    EvaluationError,
    PlanViolationError,
    RecoveryExhaustedError,
    ReproError,
    WorkerCrashError,
    WorkerHungError,
)
from .plan import plan_partitions, shard_of, shard_rows
from .supervisor import RecoveryPolicy, RoundCheckpoint, Supervisor

__all__ = [
    "ParallelEngine",
    "PlanViolationError",
    "RecoveryExhaustedError",
    "WorkerCrashError",
    "WorkerHungError",
]

#: Seconds between liveness checks while waiting at a round barrier.
_POLL_INTERVAL = 0.05

#: Barrier patience of pools that run *without* a supervisor (the
#: phase-1 counting pool in :mod:`repro.parallel.counting`).  The
#: sharded fixpoint itself uses the supervised
#: :class:`~repro.parallel.supervisor.RecoveryPolicy.barrier_timeout`
#: instead.
_BARRIER_TIMEOUT = 600.0


# ----------------------------------------------------------------- #
# encoding helpers                                                   #
# ----------------------------------------------------------------- #


def _encode_rows(pool, rows, arity, intern=False):
    """Value rows -> columnar int64 bytes via the shared intern pool.

    ``intern=True`` is the coordinator's pre-synchronization mode: it
    may still allocate fresh ids (the legacy row backend never interns
    on insert, so the pool can be cold).  After the pool ships, every
    encode must find its values already known — a miss there is a plan
    violation, not a cue to allocate an id the workers don't have.

    Encoding runs column-at-a-time: each column is one C-level
    ``map`` into an ``array('q')``, which is what keeps the exchange
    overhead of a sharded round a small fraction of its join work.
    """
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    lookup = pool.ident if intern else pool.peek
    try:
        columns = tuple(
            array("q", map(lookup, (row[position] for row in rows)))
            for position in range(arity)
        )
    except TypeError:
        # peek returned None for a value the plan promised was known.
        raise PlanViolationError(
            "value not in the synchronized intern pool"
        )
    return ColumnStore(arity, columns).to_bytes()


def _decode_rows(pool, data):
    """Columnar bytes -> list of value rows.

    The inverse fast path of :func:`_encode_rows`: every column is one
    C-level ``map`` through the pool's dense value table, zipped back
    into row tuples.
    """
    store = ColumnStore.from_bytes(data)
    columns = store._columns
    if not columns:
        return []
    values = pool._values
    return list(zip(*[map(values.__getitem__, col) for col in columns]))


def _relation_rows(relation):
    """All rows of a relation in insertion order (both backends).

    Epoch-pinned snapshot views (the serving layer's generations) carry
    no ``_log`` of their own; materializing the frozen relation first
    yields the same insertion-ordered log truncated at the pin.
    """
    if isinstance(relation, EmptyRelation):
        return []
    log = getattr(relation, "_log", None)
    if log is None:
        log = relation._rel()._log
    return list(log)


def _bind_fact(atom, row):
    """Substitution binding ``atom`` to the ground ``row``, or None."""
    subst = {}
    for arg, value in zip(atom.args, row):
        resolved = resolve(arg, subst)
        if isinstance(resolved, Constant):
            if resolved.value != value:
                return None
        else:
            subst = match_value(resolved, value, subst)
            if subst is None:
                return None
    return subst


def _rule_tables(program):
    """Per delta-predicate dispatch tables for the recursive rules.

    Maps each predicate key to the list of ``(rule, recursive atom,
    rest-of-body)`` entries whose recursive atom has that predicate;
    ``rest`` preserves the original literal order minus the recursive
    atom, so join scan order (and therefore ``tuples_scanned``)
    matches a single-process evaluation of the same rule.
    """
    analysis = ProgramAnalysis(program)
    tables = {}
    for clique in analysis.components:
        for rule in clique.recursive_rules:
            left, rec, right = clique.split_body(rule)
            tables.setdefault(rec.key, []).append(
                (rule, rec, tuple(left) + tuple(right))
            )
    return tables


# ----------------------------------------------------------------- #
# worker side                                                        #
# ----------------------------------------------------------------- #


class _WorkerState:
    """Everything one pool worker keeps between rounds."""

    def __init__(self, index, payload):
        self.index = index
        self.pool = InternPool()
        for value in payload["values"]:
            self.pool.ident(value)
        self.relations = {}
        for key, (arity, blob) in sorted(payload["relations"].items()):
            relation = Relation(key[0], arity, pool=self.pool)
            for row in _decode_rows(self.pool, blob):
                relation.add(row)
            self.relations[key] = relation
        # Empty replicas for every lower-clique IDB relation a
        # recursive rule looks up; filled by "replicate" messages.
        for key in payload["replicas"]:
            self.relations.setdefault(
                key, Relation(key[0], key[1], pool=self.pool)
            )
        self.rules = _rule_tables(payload["program"])
        self.stats = EvalStats()
        timeout = payload.get("timeout")
        self.budget = (
            ResourceBudget(timeout=timeout) if timeout is not None
            else None
        )

    def _resolve(self, _index, atom):
        relation = self.relations.get(atom.key)
        if relation is None:
            raise PlanViolationError(
                "worker %d has no replica of %s/%d"
                % (self.index, atom.key[0], atom.key[1])
            )
        return relation

    def process_round(self, deltas):
        """Fire recursive rules for the routed delta facts.

        Returns the per-round stats delta and, per head predicate, the
        derived rows with their derivation multiplicities — duplicates
        are *not* collapsed silently, the coordinator charges them to
        ``facts_duplicate`` exactly as a single-process run would.
        """
        round_stats = EvalStats()
        derived = {}
        for pred_key in sorted(deltas):
            rows = _decode_rows(self.pool, deltas[pred_key])
            entries = self.rules.get(pred_key, ())
            for row in rows:
                for rule, rec, rest in entries:
                    round_stats.rule_firings += 1
                    subst = _bind_fact(rec, row)
                    if subst is None:
                        continue
                    for result in evaluate_body(
                        rest, self._resolve, subst, round_stats
                    ):
                        head_row = ground_head(rule.head, result)
                        bucket = derived.setdefault(rule.head.key, {})
                        bucket[head_row] = bucket.get(head_row, 0) + 1
        self.stats.merge(round_stats)
        if self.budget is not None:
            self.budget.check(self.stats)
        faults.fire("round", self.stats)
        out = {
            key: (
                _encode_rows(self.pool, bucket.keys(), key[1]),
                array("q", bucket.values()).tobytes(),
            )
            for key, bucket in derived.items()
        }
        return round_stats, out

    def replicate(self, blobs):
        """Install post-clique replicas of lower-clique IDB relations."""
        for key, (arity, blob) in sorted(blobs.items()):
            relation = self.relations.get(key)
            if relation is None:
                relation = Relation(key[0], arity, pool=self.pool)
                self.relations[key] = relation
            for row in _decode_rows(self.pool, blob):
                relation.add(row)

    def reshard(self, blobs):
        """Replace base shards after a coordinator reassignment.

        Full replacement, not union: the coordinator re-computes this
        worker's shard of every sharded base relation for the shrunken
        pool and ships it whole.  Replacement keeps probe and scan
        counters exactly equal to an undisturbed run of the new pool
        size — a union would retain rows of buckets this worker no
        longer owns.  Pipe FIFO ordering makes the swap safe: every
        round message sent before the reshard was routed under the old
        sharding and has already been processed by the time this
        message arrives.
        """
        for key, (arity, blob) in sorted(blobs.items()):
            relation = Relation(key[0], arity, pool=self.pool)
            for row in _decode_rows(self.pool, blob):
                relation.add(row)
            self.relations[key] = relation


def _heartbeat_loop(conn, interval):
    """Daemon thread: beat on the liveness pipe until it breaks.

    Deliberately independent of the worker's main loop — a beat proves
    the *process* is scheduled and alive, not that the round is making
    progress.  The coordinator pairs this signal with its barrier
    deadline to tell a wedged process (no beats) from a stuck round
    (beats flowing, no reply).
    """
    while True:
        try:
            conn.send(1)
        except (OSError, ValueError):
            return
        time.sleep(interval)


def _worker_main(index, conn, hb_conn, payload):
    """Entry point of one pool process: a lockstep message loop."""
    import gc

    # A pool worker lives for one evaluation and exits.  Cyclic GC in
    # the child walks the whole fork-inherited heap (refcount writes
    # fault in copy-on-write pages of everything the coordinator ever
    # allocated), which can dwarf the worker's actual join work under
    # a large parent process; anything cyclic the worker allocates is
    # reclaimed by process exit anyway.
    gc.disable()
    # Heartbeats start before state construction so a slow payload
    # replay (a large shipped value table) never reads as a hang.
    threading.Thread(
        target=_heartbeat_loop,
        args=(hb_conn, payload.get("heartbeat", 0.1)),
        daemon=True,
    ).start()
    injector = None
    try:
        # Under the fork start method the child inherits the
        # coordinator's *installed* injector (module global plus
        # patched Relation methods).  Uninstall it first: the worker
        # runs its own derived injector, seeded for this index.
        inherited = faults.active_injector()
        if inherited is not None:
            inherited.uninstall()
        spec = payload.get("faults")
        if spec is not None:
            injector = FaultInjector.from_spec(spec).derive(index)
            injector.install()
        state = _WorkerState(index, payload)
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        _send_error(conn, exc)
        return
    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "close":
                return
            try:
                if op == "round":
                    round_stats, derived = state.process_round(message[1])
                    conn.send(("ok", round_stats, derived))
                elif op == "replicate":
                    state.replicate(message[1])
                    conn.send(("ok", None, {}))
                elif op == "reshard":
                    state.reshard(message[1])
                    conn.send(("ok", None, {}))
                else:
                    raise EvaluationError("unknown worker op %r" % (op,))
            except ReproError as exc:
                _send_error(conn, exc)
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        if injector is not None:
            injector.uninstall()


def _send_error(conn, exc):
    try:
        conn.send(("error", exc))
    except (pickle.PicklingError, TypeError, OSError):
        # Last resort: strip the payload rather than dying silently.
        try:
            conn.send(("error", EvaluationError(str(exc))))
        except OSError:
            pass


# ----------------------------------------------------------------- #
# coordinator side                                                   #
# ----------------------------------------------------------------- #


class _WorkerHandle:
    """Coordinator-side view of one pool worker.

    ``queue`` holds the unacknowledged messages in flight to the
    worker, oldest first — pipe FIFO means replies arrive in exactly
    this order, and on failure the queue *is* the list of work that
    must be re-issued elsewhere.  ``busy_since`` stamps when the head
    message started being serviceable (for hang and straggler
    deadlines).
    """

    __slots__ = ("slot", "process", "conn", "hb", "queue", "busy_since")

    def __init__(self, slot, process, conn, hb):
        self.slot = slot
        self.process = process
        self.conn = conn
        self.hb = hb
        self.queue = deque()
        self.busy_since = None


def _reap_worker(handle, patience=0.5, graceful=True):
    """Escalating worker teardown: join, terminate, kill, close.

    ``graceful`` waits one ``patience`` for a voluntary exit first
    (the worker was sent ``("close",)``); repair paths skip straight
    to ``terminate``.  SIGTERM can be masked or ignored by a wedged
    worker, so after a failed terminate the escalation ends in
    ``kill()`` — un-maskable — and *always* closes both pipe ends and
    the ``Process`` object, so repeated evaluations can never leak
    zombie processes or file descriptors.
    """
    process = handle.process
    if graceful:
        process.join(timeout=patience)
    if process.is_alive():
        process.terminate()
        process.join(timeout=patience)
    if process.is_alive():
        process.kill()
        process.join(timeout=patience)
    elif not graceful:
        # Reap a dead-but-unjoined child so it never lingers as a
        # zombie between the repair and pool shutdown.
        process.join(timeout=patience)
    for conn in (handle.conn, handle.hb):
        try:
            conn.close()
        except OSError:
            pass
    try:
        process.close()
    except ValueError:
        # Still running despite SIGKILL (scheduler lag); leave the
        # Process object unreleased rather than raise during cleanup.
        pass


class _InlineWorker:
    """The pool-of-one used by serial mode: same code path, no IPC.

    Joins read the coordinator's database and derived relations
    directly — the single "shard" of every relation is the whole
    relation — so the serial baseline measures pure engine work with
    zero exchange overhead, which is exactly what the parallel run's
    speedup should be judged against.

    Doubles as the coordinator-local speculative executor: for a
    straggler's checkpointed round portion, probing the full relations
    visits exactly the buckets the worker's shard would have (rows
    sharing a partition-column value are never split across shards),
    so the speculative twin's counters match the worker's.
    """

    def __init__(self, engine):
        self.engine = engine
        self.rules = _rule_tables(engine.query.program)

    def _resolve(self, _index, atom):
        relation = self.engine.derived.get(atom.key)
        if relation is not None:
            return relation
        return self.engine.db.get(atom.key)

    def process_round(self, deltas):
        round_stats = EvalStats()
        derived = {}
        for pred_key in sorted(deltas):
            entries = self.rules.get(pred_key, ())
            for row in deltas[pred_key]:
                for rule, rec, rest in entries:
                    round_stats.rule_firings += 1
                    subst = _bind_fact(rec, row)
                    if subst is None:
                        continue
                    for result in evaluate_body(
                        rest, self._resolve, subst, round_stats
                    ):
                        head_row = ground_head(rule.head, result)
                        bucket = derived.setdefault(rule.head.key, {})
                        bucket[head_row] = bucket.get(head_row, 0) + 1
        return round_stats, derived


class ParallelEngine:
    """Coordinator of one sharded fixpoint evaluation.

    ``workers=0`` (or ``inline=True``) selects serial mode: the same
    plan, rounds and counters with no child processes — the reference
    the multiprocess counters must match and the baseline the scaling
    benchmark compares against.

    ``recovery`` takes a :class:`~repro.parallel.supervisor.
    RecoveryPolicy`, a mode string (``"reassign"`` / ``"respawn"`` /
    ``"serial"``), or ``None`` for the default self-healing policy.
    """

    def __init__(self, query, db, workers=2, stats=None, budget=None,
                 plan=None, inline=False, recovery=None):
        if not isinstance(db, Database):
            raise TypeError("expected a Database")
        self.query = query
        self.db = db
        self.inline = inline or workers == 0
        self.workers = 0 if self.inline else max(1, workers)
        self.stats = stats if stats is not None else EvalStats()
        self.budget = budget
        self.plan = plan
        self.recovery = RecoveryPolicy.coerce(recovery)
        self.supervisor = Supervisor(self.recovery)
        self.analysis = None
        self.derived = {}
        self.tuples = frozenset()
        self.answers = frozenset()
        self.plan_seconds = 0.0
        self.execute_seconds = 0.0
        self.barriers = 0
        self.exchange_bytes = 0
        self._handles = []       # every live _WorkerHandle
        self._active = []        # participating handles, route order
        self._payloads = {}      # slot -> spawn payload (for respawn)
        self._replica_log = []   # replicate batches, in send order
        self._checkpoint = None  # RoundCheckpoint of the current round
        self._next_deltas = None
        self._local_worker = None
        self._context = None

    # -- planning ----------------------------------------------------

    def _plan_phase(self):
        started = time.perf_counter()
        if self.plan is None:
            self.plan = plan_partitions(
                self.query, self.db, max(1, self.workers or 1)
            )
        # Intern every program and goal constant now: after the pool
        # synchronizes, no evaluation step may allocate a fresh id.
        pool = self.db.intern_pool
        atoms = [self.query.goal]
        for rule in self.query.program:
            atoms.append(rule.head)
            atoms.extend(rule.body_atoms())
        for atom in atoms:
            for arg in atom.args:
                if isinstance(arg, Constant):
                    pool.ident(arg.value)
        self.analysis = ProgramAnalysis(self.query.program)
        self.plan_seconds = time.perf_counter() - started

    # -- pool lifecycle ----------------------------------------------

    def _spawn_pool(self):
        pool_size = self.workers
        pool = self.db.intern_pool
        # Encode before snapshotting the value table: under the legacy
        # row backend inserts never intern, so shard encoding is what
        # assigns the dense ids the workers will replay.
        shard_blobs = [dict() for _ in range(pool_size)]
        for key, column in sorted(self.plan.sharded.items()):
            rows = _relation_rows(self.db.get(key))
            for index, shard in enumerate(
                shard_rows(rows, column, pool_size, pool)
            ):
                shard_blobs[index][key] = (
                    key[1], _encode_rows(pool, shard, key[1], intern=True)
                )
        for key in self.plan.broadcast:
            blob = _encode_rows(
                pool, _relation_rows(self.db.get(key)), key[1],
                intern=True,
            )
            for index in range(pool_size):
                shard_blobs[index][key] = (key[1], blob)
        # Coordinator-only base relations still feed delta rows through
        # the exit rounds, so their values must be in the shipped table
        # too (the columnar backend interns on insert; the legacy one
        # does not).
        shipped = set(self.plan.sharded) | set(self.plan.broadcast)
        ident_row = pool.ident_row
        for key in sorted(self.analysis.base_predicates()):
            if key in shipped:
                continue
            for row in _relation_rows(self.db.get(key)):
                ident_row(row)
        values = list(pool._values)
        replicas = sorted(
            key
            for keys in self.plan.replicate_after.values()
            for key in keys
        )
        injector = faults.active_injector()
        spec = injector.spec() if injector is not None else None
        timeout = None
        if self.budget is not None and not self.budget.is_unlimited():
            remaining = self.budget.remaining()
            if remaining is not None:
                timeout = remaining
        self._context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        for index in range(pool_size):
            payload = {
                "values": values,
                "relations": shard_blobs[index],
                "replicas": replicas,
                "program": self.query.program,
                "timeout": timeout,
                "faults": spec,
                "heartbeat": self.recovery.heartbeat_interval,
            }
            self._payloads[index] = payload
            self._active.append(self._spawn_worker(index, payload))

    def _spawn_worker(self, slot, payload):
        parent, child = self._context.Pipe(duplex=True)
        hb_recv, hb_send = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(slot, child, hb_send, payload),
            daemon=True,
        )
        process.start()
        child.close()
        hb_send.close()
        handle = _WorkerHandle(slot, process, parent, hb_recv)
        self._handles.append(handle)
        self.supervisor.beat(slot)
        return handle

    def _shutdown_pool(self):
        for handle in self._handles:
            try:
                handle.conn.send(("close",))
            except (OSError, ValueError):
                pass
        for handle in self._handles:
            _reap_worker(handle)
        self._handles = []
        self._active = []

    # -- messaging and supervision -----------------------------------

    def _dispatch(self, handle, kind, portion, group=None,
                  speculated=False):
        """Enqueue-then-send one message to a worker.

        The entry is queued *before* the send so a broken pipe loses
        nothing: the barrier loop sees the dead process and the repair
        re-issues everything still in the queue.  Every send also
        resets the slot's liveness stamp — a worker cannot be "silent"
        about a message it was only just given.
        """
        entry = {
            "kind": kind,
            "portion": portion,
            "group": group,
            "speculated": speculated,
            "sent_at": time.perf_counter(),
        }
        if handle.busy_since is None:
            handle.busy_since = entry["sent_at"]
        handle.queue.append(entry)
        self.supervisor.beat(handle.slot)
        try:
            handle.conn.send((kind, portion))
        except (OSError, ValueError):
            pass

    def _barrier(self):
        """Wait until every active worker's outstanding work is
        *covered*: either its reply arrived, or a speculation twin's
        result was already taken (the group is done).  A straggler
        whose portion was won elsewhere no longer holds the barrier —
        its late reply is popped and discarded whenever it surfaces,
        this round or a later one."""
        while self._pending():
            self._barrier_step()
        self.barriers += 1

    def _pending(self):
        for handle in self._active:
            for entry in handle.queue:
                group = entry["group"]
                if group is None or not group["done"]:
                    return True
        return False

    def _barrier_step(self):
        pending = {h.conn: h for h in self._active if h.queue}
        beats = {h.hb: h for h in self._active}
        ready = _mp_connection.wait(
            list(pending) + list(beats), timeout=_POLL_INTERVAL
        )
        for conn in ready:
            handle = beats.get(conn)
            if handle is not None and handle in self._active:
                self._drain_heartbeats(handle)
        for conn in ready:
            handle = pending.get(conn)
            if handle is not None and handle in self._active:
                self._receive(handle)
        if self.budget is not None and self.budget.expired():
            raise DeadlineExceeded(
                "deadline passed waiting at a round barrier",
                stats=self.stats,
            )
        self._check_health()

    def _drain_heartbeats(self, handle):
        try:
            while handle.hb.poll(0):
                handle.hb.recv()
                self.supervisor.beat(handle.slot)
        except (EOFError, OSError):
            pass  # death is the liveness check's business

    def _receive(self, handle):
        """Take one reply off a worker's channel and account for it."""
        try:
            reply = handle.conn.recv()
        except (EOFError, OSError):
            self._failure(handle, "crash",
                          detail="channel closed mid-round")
            return
        self.supervisor.beat(handle.slot)
        if reply[0] == "error":
            # Typed worker errors (budget firings, plan violations,
            # injected faults) are deterministic verdicts about the
            # evaluation, not environmental failures — no repair.
            raise reply[1]
        entry = handle.queue.popleft()
        now = time.perf_counter()
        handle.busy_since = now if handle.queue else None
        group = entry["group"]
        if group is not None:
            group["live"] -= 1
            if group["done"]:
                return  # losing twin of a speculation — discard
            group["done"] = True
            if entry["speculated"]:
                self.supervisor.record(
                    "speculative_win", handle.slot,
                    self.stats.iterations,
                    seconds=now - entry["sent_at"], detail="peer",
                )
        if entry["kind"] == "round":
            self.supervisor.observe_round_time(now - entry["sent_at"])
            _tag, round_stats, derived = reply
            self.stats.merge(round_stats)
            self._merge_derived(derived)

    def _merge_derived(self, derived):
        """Integrate one reply's derivations into relations + deltas."""
        values = self.db.intern_pool._values
        for key in sorted(derived):
            blob, count_blob = derived[key]
            self.exchange_bytes += len(blob)
            store = ColumnStore.from_bytes(blob)
            columns = store._columns
            id_rows = list(zip(*columns)) if columns else []
            rows = [
                tuple(map(values.__getitem__, ids))
                for ids in id_rows
            ]
            counts = array("q")
            counts.frombytes(count_blob)
            for row, ids, count in zip(rows, id_rows, counts):
                self._integrate(
                    key, row, count, self._next_deltas, ids=ids
                )

    def _check_health(self):
        """Classify every waiting slot; repair or speculate as needed."""
        now = time.perf_counter()
        deadline = self.supervisor.straggler_deadline()
        for handle in list(self._active):
            if not handle.queue:
                continue
            waited = (
                now - handle.busy_since
                if handle.busy_since is not None else 0.0
            )
            verdict = self.supervisor.diagnose(
                handle.slot, waited, handle.process.is_alive()
            )
            if verdict is not None:
                self._failure(handle, verdict, waited=waited)
                continue
            if deadline is not None and waited > deadline:
                self._speculate(handle)

    # -- failure handling --------------------------------------------

    def _failure(self, handle, verdict, waited=0.0, detail=""):
        """One worker is dead or hung: repair the pool or raise typed.

        Order of resorts: in-place repair (reassign / respawn) while
        the allowance lasts; a typed error only under ``mode="serial"``
        or once :class:`RecoveryPolicy.max_repairs` is spent — so the
        resilient chain's serial restart is the *last* resort.
        """
        slot = handle.slot
        round_index = self.stats.iterations
        if verdict == "crash":
            self.supervisor.record(
                "crash", slot, round_index, seconds=waited,
                detail=detail or "exit code %r" % (
                    handle.process.exitcode,),
            )
            error_cls, reason = WorkerCrashError, "died"
        else:
            self.supervisor.record(
                "hang", slot, round_index, seconds=waited,
                detail=detail or "no reply for %.2fs" % waited,
            )
            error_cls, reason = WorkerHungError, "hung"
        policy = self.recovery
        if policy.mode == "serial":
            raise error_cls(
                "worker %d %s mid-round (exit code %r)"
                % (slot, reason, handle.process.exitcode),
                stats=self.stats,
            )
        if not self.supervisor.allow_repair():
            raise RecoveryExhaustedError(
                "worker %d %s after the repair allowance "
                "(max_repairs=%d) was spent"
                % (slot, reason, policy.max_repairs),
                stats=self.stats,
                repairs=self.supervisor.event_dicts(),
                rounds=self.stats.iterations,
            )
        if policy.mode == "reassign" and len(self._active) <= 1:
            raise RecoveryExhaustedError(
                "worker %d %s with no survivor to reassign onto"
                % (slot, reason),
                stats=self.stats,
                repairs=self.supervisor.event_dicts(),
                rounds=self.stats.iterations,
            )
        started = time.perf_counter()
        self.supervisor.repairs += 1
        orphaned = list(handle.queue)
        self._remove(handle)
        if policy.mode == "respawn":
            self._respawn(slot, orphaned)
        else:
            self._reassign(slot, orphaned)
        self.supervisor.recovery_seconds += (
            time.perf_counter() - started
        )

    def _remove(self, handle):
        if handle in self._active:
            self._active.remove(handle)
        if handle in self._handles:
            self._handles.remove(handle)
        self.supervisor.forget(handle.slot)
        _reap_worker(handle, patience=0.2, graceful=False)

    def _orphaned_rounds(self, orphaned):
        """The round portions of a failed worker that still need a
        home.  Replicate/reshard entries never transfer: survivors get
        their own copies, and respawns replay the replicate log.
        Speculation twins transfer only when the other twin can no
        longer deliver (``live`` drained without a winner)."""
        portions = []
        for entry in orphaned:
            group = entry["group"]
            if group is not None:
                group["live"] -= 1
                if group["done"] or group["live"] > 0:
                    continue
            if entry["kind"] == "round" and entry["portion"]:
                portions.append(entry["portion"])
        return portions

    def _respawn(self, slot, orphaned):
        """Fork a replacement into the failed worker's slot.

        The replacement is rebuilt from the retained spawn payload —
        with worker-targeted fault plans disarmed, since they model a
        one-time environmental failure — then brought to the current
        barrier by replaying the replicate log, then handed the failed
        worker's checkpointed round portion.
        """
        payload = dict(self._payloads[slot])
        payload["faults"] = strip_worker_plans(payload.get("faults"))
        handle = self._spawn_worker(slot, payload)
        # Routing maps owner index -> active position, so the active
        # list must stay sorted by slot for the mapping to be stable.
        position = len(self._active)
        for index, existing in enumerate(self._active):
            if existing.slot > slot:
                position = index
                break
        self._active.insert(position, handle)
        for blobs in self._replica_log:
            self._dispatch(handle, "replicate", blobs)
        replayed = False
        for portion in self._orphaned_rounds(orphaned):
            self._dispatch(handle, "round", portion)
            replayed = True
        if replayed:
            self.supervisor.rounds_replayed += 1
        self.supervisor.record("respawn", slot, self.stats.iterations)

    def _reassign(self, slot, orphaned):
        """Rehash the failed worker's shards onto the survivors.

        Replacement shards for the shrunken pool ship *first*; the
        failed worker's checkpointed round portion is re-routed with
        the new worker count *second*.  Pipe FIFO ordering then
        guarantees each survivor finishes its in-flight old-sharding
        round work before the reshard applies, and processes the
        re-routed repair portion only after it.
        """
        pool = self.db.intern_pool
        count = len(self._active)
        if self.plan.sharded:
            shard_blobs = [dict() for _ in range(count)]
            for key, column in sorted(self.plan.sharded.items()):
                rows = _relation_rows(self.db.get(key))
                for position, shard in enumerate(
                    shard_rows(rows, column, count, pool)
                ):
                    shard_blobs[position][key] = (
                        key[1], _encode_rows(pool, shard, key[1])
                    )
            for position, peer in enumerate(self._active):
                portion = shard_blobs[position]
                for _arity, blob in portion.values():
                    self.exchange_bytes += len(blob)
                self._dispatch(peer, "reshard", portion)
        replayed = False
        for portion in self._orphaned_rounds(orphaned):
            for position, part in enumerate(
                self._reroute(portion, count)
            ):
                if part:
                    self._dispatch(self._active[position], "round", part)
            replayed = True
        if replayed:
            self.supervisor.rounds_replayed += 1
        self.supervisor.record(
            "reassign", slot, self.stats.iterations,
            detail="%d survivors" % count,
        )

    def _reroute(self, portion, count):
        """Split a checkpointed round portion across the current pool."""
        parts = [dict() for _ in range(count)]
        for key in sorted(portion):
            column = self.plan.partition[key]
            arity = key[1]
            store = ColumnStore.from_bytes(portion[key])
            columns = store._columns
            id_rows = list(zip(*columns)) if columns else []
            shards = [
                tuple(array("q") for _ in range(arity))
                for _ in range(count)
            ]
            for ids in id_rows:
                owner = shard_of(ids[column], count)
                for col, ident in zip(shards[owner], ids):
                    col.append(ident)
            for position, part_columns in enumerate(shards):
                if part_columns and len(part_columns[0]):
                    blob = ColumnStore(arity, part_columns).to_bytes()
                    parts[position][key] = blob
                    self.exchange_bytes += len(blob)
        return parts

    # -- speculation --------------------------------------------------

    def _speculate(self, handle, detail=None):
        """Re-execute a straggler's round portion; first result wins.

        At most one twin per message: the discard group guarantees
        exactly one result is integrated and one stats delta merged,
        so speculation can never double-count.  An idle peer runs the
        twin only on broadcast-only plans (a peer lacks the other
        workers' base shard buckets otherwise); sharded plans re-run
        the portion on the coordinator, whose full relations are
        bucket-equivalent to the straggler's shard.
        """
        entry = next(
            (
                e for e in handle.queue
                if e["kind"] == "round" and not e["speculated"]
                and e["group"] is None and e["portion"]
            ),
            None,
        )
        if entry is None:
            return
        entry["speculated"] = True
        if not self.plan.sharded:
            peer = next(
                (h for h in self._active
                 if h is not handle and not h.queue),
                None,
            )
            if peer is not None:
                group = {"done": False, "live": 2}
                entry["group"] = group
                self._dispatch(
                    peer, "round", entry["portion"],
                    group=group, speculated=True,
                )
                return
        started = time.perf_counter()
        round_stats, derived = self._local_round(entry["portion"])
        entry["group"] = {"done": True, "live": 1}
        self.stats.merge(round_stats)
        for key in sorted(derived):
            for row, count in derived[key].items():
                self._integrate(key, row, count, self._next_deltas)
        self.supervisor.record(
            "speculative_win", handle.slot, self.stats.iterations,
            seconds=time.perf_counter() - started, detail="local",
        )

    def _local_round(self, portion):
        """Run one checkpointed round portion on the coordinator."""
        if self._local_worker is None:
            self._local_worker = _InlineWorker(self)
        pool = self.db.intern_pool
        deltas = {
            key: _decode_rows(pool, blob)
            for key, blob in portion.items()
        }
        return self._local_worker.process_round(deltas)

    # -- evaluation --------------------------------------------------

    def _relation(self, key):
        relation = self.derived.get(key)
        if relation is None:
            relation = Relation(
                key[0], key[1], pool=self.db.intern_pool
            )
            self.derived[key] = relation
        return relation

    def _resolve(self, _index, atom):
        if atom.key in self.analysis.derived:
            return self._relation(atom.key)
        return self.db.get(atom.key)

    def _integrate(self, key, row, multiplicity, deltas, ids=None):
        """Count one derivation batch and extend the next delta.

        In multiprocess mode the delta lists carry *id* rows — the
        routing currency — so integration passes the ids it already
        has from the wire (``ids``) or encodes them once here; inline
        mode keeps value rows, its worker joins on values directly.
        """
        if self._relation(key).add(row):
            self.stats.facts_derived += 1
            self.stats.facts_duplicate += multiplicity - 1
            if self.inline:
                deltas.setdefault(key, []).append(row)
            else:
                if ids is None:
                    peek = self.db.intern_pool.peek
                    ids = tuple(peek(value) for value in row)
                deltas.setdefault(key, []).append(ids)
        else:
            self.stats.facts_duplicate += multiplicity

    def _round_boundary(self):
        self.stats.iterations += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        faults.fire("round", self.stats)

    def _exit_round(self, clique):
        """Evaluate a clique's exit rules on the coordinator."""
        deltas = {}
        for rule in clique.exit_rules:
            for row in evaluate_rule(rule, self._resolve, self.stats):
                self._integrate(rule.head.key, row, 1, deltas)
        self._round_boundary()
        return deltas

    def _route(self, deltas):
        """Split delta id rows across workers by their owner column.

        Routing and encoding are fused: the delta lists already hold
        id rows (see :meth:`_integrate`), so the owner comes straight
        from the partition column's id and the ids land directly in
        the owner's column arrays — no value lookups, no intermediate
        per-shard row lists.  The worker count is the *current* active
        pool — after a reassignment, deltas rehash across the
        survivors.
        """
        workers = len(self._active)
        routed = [dict() for _ in range(workers)]
        for key in sorted(deltas):
            column = self.plan.partition[key]
            arity = key[1]
            shards = [
                tuple(array("q") for _ in range(arity))
                for _ in range(workers)
            ]
            try:
                for ids in deltas[key]:
                    owner = shard_of(ids[column], workers)
                    for col, ident in zip(shards[owner], ids):
                        col.append(ident)
            except TypeError:
                raise PlanViolationError(
                    "delta value not in the synchronized intern pool"
                )
            for index, columns in enumerate(shards):
                if columns and len(columns[0]):
                    routed[index][key] = ColumnStore(
                        arity, columns
                    ).to_bytes()
        return routed

    def _checkpoint_round(self, routed):
        """Retain the round's routed portions as the recovery state.

        The portions are already columnar wire blobs, so the in-memory
        checkpoint costs no extra encoding; ``spill=True`` proves the
        on-disk form by round-tripping through ``to_bytes`` every
        round.  Epochs snapshot each derived relation's mutation
        counter at the barrier — the monotone progress marker repairs
        are measured against.
        """
        checkpoint = RoundCheckpoint(
            self.stats.iterations,
            {
                self._active[i].slot: routed[i]
                for i in range(len(self._active))
            },
            {
                key: getattr(relation, "epoch", 0)
                for key, relation in self.derived.items()
            },
        )
        if self.recovery.spill:
            blob = checkpoint.to_bytes()
            checkpoint = RoundCheckpoint.from_bytes(blob)
            self.supervisor.note_checkpoint(checkpoint, spilled=blob)
        else:
            self.supervisor.note_checkpoint(checkpoint)
        self._checkpoint = checkpoint
        return checkpoint

    def _recursive_rounds(self, inline_worker, deltas):
        """Drive rounds until every delta is empty (global fixpoint)."""
        while deltas:
            if inline_worker is not None:
                round_stats, derived = inline_worker.process_round(deltas)
                self.stats.merge(round_stats)
                deltas = {}
                for key in sorted(derived):
                    for row, count in derived[key].items():
                        self._integrate(key, row, count, deltas)
            else:
                routed = self._route(deltas)
                self._checkpoint_round(routed)
                self._next_deltas = {}
                for index, handle in enumerate(self._active):
                    for blob in routed[index].values():
                        self.exchange_bytes += len(blob)
                    self._dispatch(handle, "round", routed[index])
                self._barrier()
                deltas = self._next_deltas
                self._next_deltas = None
            self._round_boundary()

    def _replicate(self, clique_index):
        keys = self.plan.replicate_after.get(clique_index, ())
        if not keys or self.inline:
            return
        pool = self.db.intern_pool
        blobs = {}
        for key in keys:
            rows = _relation_rows(self._relation(key))
            blobs[key] = (key[1], _encode_rows(pool, rows, key[1]))
        # Log before sending: a worker respawned later must replay
        # every replicate batch, including one whose barrier it died
        # inside (replica installs are idempotent set-adds).
        self._replica_log.append(blobs)
        for handle in list(self._active):
            for _arity, blob in blobs.values():
                self.exchange_bytes += len(blob)
            self._dispatch(handle, "replicate", blobs)
        self._barrier()

    def run(self):
        """Evaluate to fixpoint; populates tuples/answers/stats."""
        self._plan_phase()
        started = time.perf_counter()
        inline_worker = _InlineWorker(self) if self.inline else None
        try:
            if not self.inline:
                self._spawn_pool()
            for clique_index, clique in enumerate(
                self.analysis.components
            ):
                deltas = self._exit_round(clique)
                if clique.is_recursive():
                    self._recursive_rounds(inline_worker, deltas)
                self._replicate(clique_index)
        except ReproError as exc:
            # Ship the recovery story with the failure: the resilient
            # runner copies it onto the attempt record, so a degraded
            # report still shows what self-healing tried first.
            if getattr(exc, "recovery", None) is None:
                exc.recovery = self.supervisor.as_dict()
            if getattr(exc, "rounds", None) in (None, 0):
                exc.rounds = self.stats.iterations
            raise
        finally:
            self._shutdown_pool()
            self.execute_seconds = time.perf_counter() - started
        goal = self.query.goal
        relation = self.derived.get(goal.key)
        if relation is None:
            relation = self.db.get(goal.key)
        self.tuples = frozenset(goal_filter(goal, relation))
        self.answers = frozenset(project_free(goal, self.tuples))
        return self

    def extras(self):
        """Deterministic run description for ExecutionResult extras."""
        return {
            "workers": self.workers,
            "barriers": self.barriers,
            "exchange_bytes": self.exchange_bytes,
            "phase_seconds": {
                "plan": self.plan_seconds,
                "execute": self.execute_seconds,
            },
            "plan": self.plan.as_dict() if self.plan else None,
            "recovery": self.supervisor.as_dict(),
        }
