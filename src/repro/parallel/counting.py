"""Parallel construction of the counting set (phase 1 of §3).

Phase 1 of the counting method is a DFS over the left-part graph: each
node expansion runs the recursive rules' bound left-queries against the
database.  Those expansions are independent of one another — only the
*classification* of the discovered arcs (tree/forward/cross/back)
depends on visit order — so the expensive part fans out cleanly:

1. the coordinator grows the reachable node set in breadth waves,
   spreading each wave's expansions across the worker pool (the first
   wave is exactly the source's root subtrees);
2. every worker returns, per node, the successor list *and* the work
   counters that computing it cost;
3. the coordinator then replays the serial DFS
   (:func:`~repro.graph.dfs.classify_arcs`) over the cached successor
   map — the replay performs no database work, so the resulting
   :class:`~repro.exec.counting_engine.CountingTable` is byte-identical
   to a serial build, and merging each node's recorded counters exactly
   once reproduces the serial :class:`EvalStats` totals.

The unwind phase (phase 2) stays serial and untouched.

Workers receive the full database (the left-queries' probe pattern is
value-driven, not partitionable ahead of time), shipped once over the
columnar fast path with a synchronized intern pool, like the sharded
fixpoint executor does.
"""

import multiprocessing

from ..engine.instrumentation import EvalStats
from ..engine.interning import InternPool
from ..engine.relation import Relation
from ..errors import EvaluationError, ReproError
from .executor import (
    WorkerCrashError,
    _BARRIER_TIMEOUT,
    _POLL_INTERVAL,
    _decode_rows,
    _encode_rows,
    _relation_rows,
    _send_error,
)

#: Counters shipped per node; ``rule_firings`` and the scan/probe pair
#: dominate, the rest are carried for completeness.
_COUNTER_FIELDS = (
    "rule_firings", "tuples_scanned", "facts_derived",
    "facts_duplicate", "iterations", "index_probes", "batch_rows",
)


def _counters(stats):
    return tuple(getattr(stats, name) for name in _COUNTER_FIELDS)


def _merge_counters(stats, before, after):
    for name, b, a in zip(_COUNTER_FIELDS, before, after):
        setattr(stats, name, getattr(stats, name) + (a - b))


def _counting_worker_main(index, conn, payload):
    """Pool process for phase-1 expansion: build an engine over the
    shipped database, then expand node batches on request."""
    try:
        from ..exec.counting_engine import CountingEngine

        pool = InternPool()
        for value in payload["values"]:
            pool.ident(value)
        relations = {}
        for key, (arity, blob) in sorted(payload["relations"].items()):
            relation = Relation(key[0], arity, pool=pool)
            for row in _decode_rows(pool, blob):
                relation.add(row)
            relations[key] = relation

        def get_relation(key):
            relation = relations.get(key)
            if relation is None:
                relation = Relation(key[0], key[1], pool=pool)
                relations[key] = relation
            return relation

        engine = CountingEngine(
            payload["canonical"],
            payload["goal_key"],
            payload["source_values"],
            get_relation,
            stats=EvalStats(),
        )
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        _send_error(conn, exc)
        return
    try:
        while True:
            message = conn.recv()
            if message[0] == "close":
                return
            try:
                expanded = {}
                for node in message[1]:
                    before = _counters(engine.stats)
                    successors = engine._successors(node)
                    after = _counters(engine.stats)
                    expanded[node] = (successors, before, after)
                conn.send(("ok", expanded))
            except ReproError as exc:
                _send_error(conn, exc)
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return


class CachedSuccessors:
    """Successor resolver backed by the parallel expansion cache.

    Serving a node merges its recorded counters into the engine stats
    exactly once; a cache miss (impossible when the wave expansion
    covered the reachable set, but kept as a correctness net) falls
    back to the engine's own serial expansion, whose counters accrue
    naturally.
    """

    def __init__(self, engine, cache, deltas):
        self.engine = engine
        self.cache = cache
        self.deltas = deltas

    def __call__(self, node):
        cached = self.cache.get(node)
        if cached is None:
            return self.engine._successors(node)
        delta = self.deltas.pop(node, None)
        if delta is not None:
            _merge_counters(self.engine.stats, delta[0], delta[1])
        return cached


def parallel_successor_map(engine, db, workers):
    """Expand the left graph reachable from the engine's source across
    ``workers`` processes; returns a :class:`CachedSuccessors` resolver.

    Raises :class:`~repro.parallel.executor.WorkerCrashError` (or the
    worker's own typed error) on any pool failure — callers fall back
    to the serial DFS.
    """
    if workers < 1:
        raise EvaluationError("parallel counting needs workers >= 1")
    pool = db.intern_pool
    blobs = {}
    with db._lock:
        items = sorted(db._relations.items())
    # Encode first (interning as needed — the legacy backend's pool is
    # cold), then snapshot the value table the workers replay.
    for key, relation in items:
        blobs[key] = (
            key[1],
            _encode_rows(pool, _relation_rows(relation), key[1],
                         intern=True),
        )
    values = list(pool._values)
    payload = {
        "values": values,
        "relations": blobs,
        "canonical": engine.canonical,
        "goal_key": engine.goal_key,
        "source_values": engine.source_values,
    }
    context = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    members = []
    try:
        for index in range(workers):
            parent, child = context.Pipe(duplex=True)
            process = context.Process(
                target=_counting_worker_main,
                args=(index, child, payload),
                daemon=True,
            )
            process.start()
            child.close()
            members.append((process, parent))
        source = (engine.goal_key, engine.source_values)
        cache = {}
        deltas = {}
        frontier = [source]
        seen = {source}
        while frontier:
            chunks = [frontier[i::workers] for i in range(workers)]
            for index, (process, conn) in enumerate(members):
                if chunks[index]:
                    conn.send(("expand", chunks[index]))
            replies = {}
            for index, (process, conn) in enumerate(members):
                if not chunks[index]:
                    continue
                reply = _await_reply(index, process, conn)
                replies.update(reply)
            if engine.budget is not None:
                engine.budget.check(engine.stats)
            next_frontier = []
            for node in frontier:
                successors, before, after = replies[node]
                cache[node] = successors
                deltas[node] = (before, after)
                for target, _label in successors:
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
            frontier = next_frontier
        return CachedSuccessors(engine, cache, deltas)
    finally:
        for process, conn in members:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for process, conn in members:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
            conn.close()


def _await_reply(index, process, conn):
    waited = 0.0
    while True:
        if conn.poll(_POLL_INTERVAL):
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                raise WorkerCrashError(
                    "counting worker %d closed its channel" % index
                )
            if reply[0] == "error":
                raise reply[1]
            return reply[1]
        if not process.is_alive():
            raise WorkerCrashError(
                "counting worker %d died (exit code %r)"
                % (index, process.exitcode)
            )
        waited += _POLL_INTERVAL
        if waited > _BARRIER_TIMEOUT:
            raise WorkerCrashError(
                "counting worker %d silent for %.0fs" % (index, waited)
            )
