"""Partition planning for data-parallel semi-naive evaluation.

The plan/execute split follows the project-join planning discipline of
DPMC/ProCount: a *planner* inspects the stratified program once and
emits an explicit, serializable :class:`PartitionedPlan`; a separate
executor (:mod:`repro.parallel.executor`) distributes it over a worker
pool without re-deriving any decision.  The plan answers three
questions:

* **How is each derived predicate partitioned?**  Every IDB predicate
  gets one *partition column*; a derived fact is owned by the worker
  ``shard_of(id(fact[column]), workers)``.  Delta facts are routed to
  their owner at round barriers, so each delta fact drives joins on
  exactly one worker — the per-fact work counters therefore sum to the
  single-worker totals regardless of pool size.

* **Which base relations are sharded, which broadcast?**  A base
  relation referenced by a recursive rule can be *sharded* on column
  ``s`` only if every such occurrence is co-located with the recursive
  atom's partition column — i.e. ``R``'s column ``s`` carries the same
  variable as the recursive atom's partition position, so a worker's
  index probes into its local shard return exactly the global bucket.
  Anything else (and anything smaller than ``broadcast_threshold``
  rows, where shipping shards costs more than replicating — the size
  bound that *Size Bound-Adorned Datalog* uses to decide what is worth
  distributing at all) is *broadcast* whole.  Base relations only
  referenced by exit rules stay on the coordinator, which evaluates
  exit rules against the full database.

* **What is exchanged at each round barrier?**  Per recursive rule the
  plan records the delta predicate and its routing column; per clique
  it records which lower-clique IDB relations must be replicated to
  workers once that clique closes (they appear as lookup targets in
  later recursive rules).

The planner only accepts programs the sharded executor can evaluate
exactly: positive linear rules over plain variables and constants.
Everything else raises :class:`~repro.errors.NotApplicableError`, which
the resilient fallback chain treats as a normal "try the next strategy"
signal.
"""

from ..datalog.analysis import ProgramAnalysis
from ..datalog.atoms import Atom
from ..datalog.rules import Query
from ..datalog.terms import Constant, Variable
from ..errors import NotApplicableError

#: Base relations smaller than this many rows are replicated to every
#: worker rather than sharded: the per-row routing bookkeeping would
#: outweigh the memory saved.
DEFAULT_BROADCAST_ROWS = 64


def shard_of(ident, workers):
    """Owner worker of an interned id — deterministic across processes.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED),
    so ownership is derived from the dense intern-pool id with a fixed
    avalanche mix instead; the same fact maps to the same worker in
    the coordinator and in every pool member.
    """
    mixed = ((ident * 0x9E3779B1) ^ (ident >> 11)) & 0xFFFFFFFFFFFFFFFF
    return mixed % workers


def shard_rows(rows, column, workers, pool):
    """Partition ``rows`` into ``workers`` lists by ``column``'s id.

    The union of the returned lists is exactly ``rows`` and every row
    appears in exactly one list (the property the partition tests pin
    down); within a list the input order is preserved.
    """
    shards = [[] for _ in range(workers)]
    ident = pool.ident
    for row in rows:
        shards[shard_of(ident(row[column]), workers)].append(row)
    return shards


class PartitionedPlan:
    """A complete, serializable sharding decision for one query.

    Attributes
    ----------
    workers : pool size the plan was computed for.
    partition : dict of derived predicate key -> partition column.
    sharded : dict of base predicate key -> shard column.
    broadcast : tuple of base predicate keys replicated to every worker.
    replicate_after : dict of clique index -> tuple of derived keys to
        broadcast once that clique closes.
    exchange : dict of recursive rule label -> (delta predicate key,
        routing column, head predicate key) — the per-round delta
        exchange schedule.
    """

    __slots__ = (
        "workers", "partition", "sharded", "broadcast",
        "replicate_after", "exchange", "broadcast_threshold",
    )

    def __init__(self, workers, partition, sharded, broadcast,
                 replicate_after, exchange, broadcast_threshold):
        self.workers = workers
        self.partition = dict(partition)
        self.sharded = dict(sharded)
        self.broadcast = tuple(sorted(broadcast))
        self.replicate_after = {
            index: tuple(sorted(keys))
            for index, keys in replicate_after.items()
        }
        self.exchange = dict(exchange)
        self.broadcast_threshold = broadcast_threshold

    def as_dict(self):
        """Deterministic summary; equal plans render equal dicts."""
        return {
            "workers": self.workers,
            "partition": {
                "%s/%d" % key: column
                for key, column in sorted(self.partition.items())
            },
            "sharded": {
                "%s/%d" % key: column
                for key, column in sorted(self.sharded.items())
            },
            "broadcast": ["%s/%d" % key for key in self.broadcast],
            "replicate_after": {
                index: ["%s/%d" % key for key in keys]
                for index, keys in sorted(self.replicate_after.items())
            },
            "exchange": {
                label: {
                    "delta": "%s/%d" % entry[0],
                    "column": entry[1],
                    "head": "%s/%d" % entry[2],
                }
                for label, entry in sorted(self.exchange.items())
            },
        }

    def describe(self):
        """One human-readable line per decision."""
        parts = ["workers=%d" % self.workers]
        for key, column in sorted(self.sharded.items()):
            parts.append("shard %s/%d by #%d" % (key[0], key[1], column))
        for key in self.broadcast:
            parts.append("broadcast %s/%d" % key)
        return "; ".join(parts)

    def __repr__(self):
        return "PartitionedPlan(workers=%d, %d sharded, %d broadcast)" % (
            self.workers, len(self.sharded), len(self.broadcast)
        )


def _plain_terms_only(atom):
    """True when every argument is a plain variable or constant."""
    return all(
        isinstance(arg, (Variable, Constant)) for arg in atom.args
    )


def _check_applicable(query, analysis):
    """Raise :class:`NotApplicableError` unless the program is sharded-
    evaluation safe: positive bodies, linear recursion, plain terms,
    no program-level facts."""
    program = query.program
    if program.facts():
        raise NotApplicableError(
            "parallel plan requires a fact-free program "
            "(ground facts overlay the database)"
        )
    for rule in program:
        if len(rule.body_atoms()) != len(rule.body):
            raise NotApplicableError(
                "parallel plan handles positive atom bodies only; "
                "rule %s has negation or comparisons" % rule.label
            )
        for atom in (rule.head,) + rule.body_atoms():
            if not _plain_terms_only(atom):
                raise NotApplicableError(
                    "parallel plan requires plain variable/constant "
                    "arguments; rule %s uses structured terms"
                    % rule.label
                )
    for clique in analysis.components:
        if clique.is_recursive() and not clique.is_linear():
            raise NotApplicableError(
                "parallel plan requires linear recursion; clique %r "
                "has a non-linear rule" % (sorted(clique.predicates),)
            )


def _partition_columns(analysis):
    """Choose one partition column per derived predicate.

    For each predicate the positions of its recursive-atom occurrences
    are scored by how often they carry a *join* variable (one shared
    with another body atom): routing deltas by a join key is what lets
    base relations co-locate their shards.  Ties and predicates with no
    recursive occurrence fall back to column 0 — any deterministic
    owner function is correct, join-key ownership is merely faster.
    """
    scores = {}
    for clique in analysis.components:
        for rule in clique.recursive_rules:
            rec = clique.recursive_atom(rule)
            others = [
                atom for atom in rule.body_atoms() if atom is not rec
            ]
            for position, arg in enumerate(rec.args):
                if not isinstance(arg, Variable):
                    continue
                joins = any(
                    arg in other.args for other in others
                )
                bucket = scores.setdefault(rec.key, {})
                bucket[position] = bucket.get(position, 0) + (
                    1 if joins else 0
                )
    partition = {}
    for key in analysis.derived:
        bucket = scores.get(key, {})
        if bucket:
            best = max(bucket.values())
            partition[key] = min(
                position for position, score in bucket.items()
                if score == best
            )
        else:
            partition[key] = 0
    return partition


def _shard_decisions(analysis, partition, db, broadcast_threshold):
    """Classify worker-referenced base relations: sharded or broadcast.

    A base relation is worker-referenced when it appears in a recursive
    rule body (exit rules are evaluated on the coordinator against the
    full database, so their occurrences impose no constraint).  The
    relation shards on column ``s`` only if *every* recursive-rule
    occurrence carries, at position ``s``, the same variable as the
    recursive atom's partition position — then each worker's probes hit
    only locally-present buckets and per-probe counters match the
    single-shard run exactly.
    """
    base = analysis.base_predicates()
    occurrences = {}
    for clique in analysis.components:
        for rule in clique.recursive_rules:
            rec = clique.recursive_atom(rule)
            column = partition[rec.key]
            anchor = rec.args[column]
            for atom in rule.body_atoms():
                if atom is rec or atom.key not in base:
                    continue
                occurrences.setdefault(atom.key, []).append(
                    (atom, anchor)
                )
    sharded = {}
    broadcast = set()
    for key in sorted(occurrences):
        size = len(db.get(key))
        if size < broadcast_threshold:
            broadcast.add(key)
            continue
        candidates = set(range(key[1]))
        for atom, anchor in occurrences[key]:
            local = {
                position
                for position, arg in enumerate(atom.args)
                if isinstance(anchor, Variable)
                and isinstance(arg, Variable)
                and arg == anchor
            }
            candidates &= local
            if not candidates:
                break
        if candidates:
            sharded[key] = min(candidates)
        else:
            broadcast.add(key)
    return sharded, broadcast


def _replication_schedule(analysis):
    """Lower-clique IDB relations that later recursive rules look up.

    Linear recursion guarantees every non-recursive body atom of a
    recursive rule names a base predicate or a predicate of an earlier
    clique; the latter must be replicated to workers once its producing
    clique closes."""
    replicate_after = {}
    clique_index = {}
    for index, clique in enumerate(analysis.components):
        for key in clique.predicates:
            clique_index[key] = index
    for clique in analysis.components:
        for rule in clique.recursive_rules:
            rec = clique.recursive_atom(rule)
            for atom in rule.body_atoms():
                if atom is rec or atom.key not in analysis.derived:
                    continue
                producer = clique_index[atom.key]
                replicate_after.setdefault(producer, set()).add(atom.key)
    return replicate_after


def plan_partitions(query, db, workers,
                    broadcast_threshold=DEFAULT_BROADCAST_ROWS):
    """Compute a :class:`PartitionedPlan` for ``query`` over ``db``.

    Deterministic: the same (program, database sizes, workers,
    threshold) always yields the same plan — a property the test suite
    pins by comparing :meth:`PartitionedPlan.as_dict` across calls.
    """
    if not isinstance(query, Query):
        raise TypeError("expected a Query")
    if workers < 1:
        raise NotApplicableError("parallel plan needs workers >= 1")
    analysis = ProgramAnalysis(query.program)
    _check_applicable(query, analysis)
    partition = _partition_columns(analysis)
    sharded, broadcast = _shard_decisions(
        analysis, partition, db, broadcast_threshold
    )
    replicate_after = _replication_schedule(analysis)
    exchange = {}
    for clique in analysis.components:
        for rule in clique.recursive_rules:
            rec = clique.recursive_atom(rule)
            exchange[rule.label] = (
                rec.key, partition[rec.key], rule.head.key
            )
    return PartitionedPlan(
        workers=workers,
        partition=partition,
        sharded=sharded,
        broadcast=broadcast,
        replicate_after=replicate_after,
        exchange=exchange,
        broadcast_threshold=broadcast_threshold,
    )
