"""Depth-first search arc classification (Tarjan [18], §2 of the paper).

Given a source node and a successor function, :func:`classify_arcs`
partitions the arcs reachable from the source into the four classical
classes:

* *tree* arcs — arcs of the DFS tree;
* *forward* arcs — to a proper descendant that is not a child;
* *cross* arcs — between nodes unrelated by ancestry;
* *back* arcs — to an ancestor (including self-loops).

Tree, forward and cross arcs together form the *ahead* arcs; the graph
restricted to ahead arcs is acyclic, which is what makes the cyclic
counting method's counting set finite (Section 4).

The classification depends on the DFS visit order; the paper notes that
"more than one different partitions are possible".  We fix a
deterministic order (sorted successors) so results are reproducible.
"""


class Arc:
    """A labeled arc ``source -> target``."""

    __slots__ = ("source", "target", "label")

    def __init__(self, source, target, label=None):
        self.source = source
        self.target = target
        self.label = label

    def __eq__(self, other):
        return (
            isinstance(other, Arc)
            and other.source == self.source
            and other.target == self.target
            and other.label == self.label
        )

    def __hash__(self):
        return hash((self.source, self.target, self.label))

    def __repr__(self):
        if self.label is None:
            return "Arc(%r -> %r)" % (self.source, self.target)
        return "Arc(%r -> %r : %r)" % (self.source, self.target, self.label)


class ArcClassification:
    """Result of :func:`classify_arcs`."""

    __slots__ = ("source", "tree", "forward", "cross", "back", "order")

    def __init__(self, source, tree, forward, cross, back, order):
        self.source = source
        self.tree = tuple(tree)
        self.forward = tuple(forward)
        self.cross = tuple(cross)
        self.back = tuple(back)
        #: Nodes in DFS discovery order (the reachable node set).
        self.order = tuple(order)

    @property
    def ahead(self):
        """Tree + forward + cross arcs: the acyclic skeleton."""
        return self.tree + self.forward + self.cross

    @property
    def arcs(self):
        return self.ahead + self.back

    @property
    def nodes(self):
        return frozenset(self.order)

    def is_acyclic(self):
        """True if the reachable subgraph contains no back arc."""
        return not self.back

    def ahead_predecessors(self):
        """Map node -> tuple of ahead arcs entering it."""
        preds = {node: [] for node in self.order}
        for arc in self.ahead:
            preds[arc.target].append(arc)
        return {node: tuple(arcs) for node, arcs in preds.items()}

    def back_predecessors(self):
        """Map node -> tuple of back arcs entering it."""
        preds = {}
        for arc in self.back:
            preds.setdefault(arc.target, []).append(arc)
        return {node: tuple(arcs) for node, arcs in preds.items()}

    def __repr__(self):
        return (
            "ArcClassification(%d nodes, %d tree, %d forward, %d cross, "
            "%d back)"
            % (
                len(self.order),
                len(self.tree),
                len(self.forward),
                len(self.cross),
                len(self.back),
            )
        )


def _sort_key(item):
    """Deterministic ordering for successor lists of mixed types."""
    target, label = item
    return (repr(target), repr(label))


def _ordered(successor_pairs):
    """Successor list in deterministic order.

    Sorting is by ``repr``, which is expensive on deeply nested node
    keys; lists of fewer than two entries (the whole graph, on
    chain-shaped data) need no ordering at all.
    """
    pairs = list(successor_pairs)
    if len(pairs) > 1:
        pairs.sort(key=_sort_key)
    return pairs


def classify_arcs(source, successors):
    """Classify all arcs reachable from ``source``.

    ``successors(node)`` must yield ``(target, label)`` pairs; the same
    pair may be yielded once per distinct arc.
    """
    discovery = {}
    finished = set()
    on_stack = set()
    tree, forward, cross, back = [], [], [], []
    order = []
    clock = [0]

    def discover(node):
        discovery[node] = clock[0]
        clock[0] += 1
        order.append(node)
        on_stack.add(node)

    discover(source)
    stack = [(source, iter(_ordered(successors(source))))]
    while stack:
        node, edges = stack[-1]
        advanced = False
        for target, label in edges:
            arc = Arc(node, target, label)
            if target not in discovery:
                tree.append(arc)
                discover(target)
                stack.append(
                    (target, iter(_ordered(successors(target))))
                )
                advanced = True
                break
            if target in on_stack:
                back.append(arc)
            elif discovery[target] > discovery[node]:
                forward.append(arc)
            else:
                cross.append(arc)
        if not advanced:
            stack.pop()
            on_stack.discard(node)
            finished.add(node)
    return ArcClassification(source, tree, forward, cross, back, order)


def adjacency_successors(arcs):
    """Build a successor function from an iterable of ``Arc`` objects."""
    adjacency = {}
    for arc in arcs:
        adjacency.setdefault(arc.source, []).append((arc.target, arc.label))

    def successors(node):
        return adjacency.get(node, ())

    return successors
