"""Query graphs (Section 2) and the left-part graph the counting
methods navigate.

For a canonical linear rule ``p(X, Y) <- L(A), q(X1, Y1), R(B)`` and a
database ``D``:

* the *left graph* ``G_L`` has an arc ``x -> x1`` labeled ``(rule,
  shared-values)`` for each ground instance of ``L`` in ``D``;
* the *right graph* ``G_R`` has an arc ``y1 -> y`` with the same kind of
  label for each ground instance of ``R``;
* the *exit graph* ``G_E`` has an arc ``x -> y`` for each ground
  instance of an exit-rule body.

Nodes are tuples of values (the bound argument list ``X`` may have any
width).  The counting methods only ever materialize the part of ``G_L``
reachable from the query constants, which is what
:class:`LeftGraph` computes; :func:`left_classification` runs the DFS
arc classification over it, yielding the ahead/back partition used by
Algorithm 2.
"""

from ..datalog.terms import Constant, Variable
from ..datalog.unify import resolve
from ..engine.join import evaluate_body
from .dfs import Arc, classify_arcs


class EdgeSpec:
    """How one recursive rule's left (or right) part generates arcs.

    Attributes
    ----------
    label : the rule label (``r1`` ...).
    literals : the conjunction to evaluate (left or right part).
    source_vars : variable names whose values form the arc source.
    target_vars : variable names whose values form the arc target.
    shared_vars : variable names whose values label the arc (the
        ``C_r`` list of the paper).
    """

    __slots__ = ("label", "literals", "source_vars", "target_vars",
                 "shared_vars")

    def __init__(self, label, literals, source_vars, target_vars,
                 shared_vars=()):
        self.label = label
        self.literals = tuple(literals)
        self.source_vars = tuple(source_vars)
        self.target_vars = tuple(target_vars)
        self.shared_vars = tuple(shared_vars)

    def __repr__(self):
        return "EdgeSpec(%s: %s -> %s)" % (
            self.label, self.source_vars, self.target_vars
        )


def _values(names, subst):
    out = []
    for name in names:
        term = resolve(Variable(name), subst)
        if not isinstance(term, Constant):
            raise ValueError("variable %s not bound by conjunction" % name)
        out.append(term.value)
    return tuple(out)


class LeftGraph:
    """The part of ``G_L`` reachable from the query constants."""

    def __init__(self, db, edge_specs, stats=None):
        self.db = db
        self.edge_specs = tuple(edge_specs)
        self.stats = stats

    def _resolver(self, _index, atom):
        return self.db.get(atom.key)

    def successors(self, node):
        """Yield ``(target, (label, shared_values))`` pairs from ``node``.

        ``node`` is a tuple of values for the spec's source variables.
        """
        results = []
        for spec in self.edge_specs:
            subst = {
                name: Constant(value)
                for name, value in zip(spec.source_vars, node)
            }
            for result in evaluate_body(
                spec.literals, self._resolver, subst, self.stats
            ):
                target = _values(spec.target_vars, result)
                shared = _values(spec.shared_vars, result)
                results.append((target, (spec.label, shared)))
        return results


def left_classification(db, edge_specs, source, stats=None):
    """DFS-classify the reachable left graph from ``source``.

    ``source`` is the tuple of query-constant values.  Returns an
    :class:`~repro.graph.dfs.ArcClassification` whose arc labels are
    ``(rule_label, shared_values)`` pairs.
    """
    graph = LeftGraph(db, edge_specs, stats=stats)
    return classify_arcs(source, graph.successors)


def enumerate_arcs(db, spec, stats=None):
    """All ground arcs of one spec, not restricted to reachability.

    Used to build ``G_R`` and ``G_E`` for display and for tests; answer
    computation never needs the full right graph.
    """

    def resolver(_index, atom):
        return db.get(atom.key)

    arcs = []
    for result in evaluate_body(spec.literals, resolver, {}, stats):
        source = _values(spec.source_vars, result)
        target = _values(spec.target_vars, result)
        shared = _values(spec.shared_vars, result)
        arcs.append(Arc(source, target, (spec.label, shared)))
    return arcs


class QueryGraph:
    """The full query graph ``G = G_L + G_R + G_E`` of Section 2."""

    def __init__(self, left_arcs, right_arcs, exit_arcs):
        self.left_arcs = tuple(left_arcs)
        self.right_arcs = tuple(right_arcs)
        self.exit_arcs = tuple(exit_arcs)

    @classmethod
    def build(cls, db, left_specs, right_specs, exit_specs, source):
        classification = left_classification(db, left_specs, source)
        left_arcs = classification.arcs
        right_arcs = []
        for spec in right_specs:
            right_arcs.extend(enumerate_arcs(db, spec))
        exit_arcs = []
        for spec in exit_specs:
            exit_arcs.extend(enumerate_arcs(db, spec))
        return cls(left_arcs, right_arcs, exit_arcs)

    def __repr__(self):
        return "QueryGraph(L=%d, R=%d, E=%d arcs)" % (
            len(self.left_arcs),
            len(self.right_arcs),
            len(self.exit_arcs),
        )
