"""Graph properties from Section 2: node classes and cycles.

With respect to a source node ``s``, a node is

* *single* if exactly one path from ``s`` reaches it,
* *multiple* if a finite number greater than one reach it,
* *recurring* if infinitely many paths reach it (i.e. some path from
  ``s`` to the node passes through a cycle).

A graph is a tree iff every node is single and acyclic iff no node is
recurring (equivalently, no back arc under any DFS).
"""

from .dfs import classify_arcs

SINGLE = "single"
MULTIPLE = "multiple"
RECURRING = "recurring"


def _reachable_arcs(classification):
    arcs = {}
    for arc in classification.arcs:
        arcs.setdefault(arc.source, set()).add(arc.target)
    return arcs


def _cycle_nodes(adjacency, nodes):
    """Nodes lying on some cycle of the reachable subgraph."""
    # A node is on a cycle iff it can reach itself through >= 1 arc.
    # Compute SCCs with an iterative Kosaraju pass; SCCs of size > 1 and
    # self-loop nodes are cyclic.
    order = []
    visited = set()
    for start in nodes:
        if start in visited:
            continue
        stack = [(start, iter(sorted(adjacency.get(start, ()), key=repr)))]
        visited.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append(
                        (succ, iter(sorted(adjacency.get(succ, ()), key=repr)))
                    )
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
    reverse = {}
    for source, targets in adjacency.items():
        for target in targets:
            reverse.setdefault(target, set()).add(source)
    assigned = {}
    for root in reversed(order):
        if root in assigned:
            continue
        component = []
        stack = [root]
        assigned[root] = root
        while stack:
            node = stack.pop()
            component.append(node)
            for pred in reverse.get(node, ()):
                if pred in nodes and pred not in assigned:
                    assigned[pred] = root
                    stack.append(pred)
        if len(component) > 1:
            for node in component:
                yield node
        elif component[0] in adjacency.get(component[0], ()):
            yield component[0]


def strongly_connected_components(adjacency, nodes=None):
    """SCC ids for a graph given as ``{node: iterable-of-successors}``.

    Returns a dict node -> component id.  Node ordering uses ``repr``
    so heterogeneous node tuples are handled deterministically.
    """
    if nodes is None:
        nodes = set(adjacency)
        for targets in adjacency.values():
            nodes.update(targets)
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    component = {}
    counter = [0]
    comp_counter = [0]

    def visit(start):
        work = [(start, iter(sorted(adjacency.get(start, ()), key=repr)))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ,
                         iter(sorted(adjacency.get(succ, ()), key=repr)))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_counter[0]
                    if member == node:
                        break
                comp_counter[0] += 1

    for node in sorted(nodes, key=repr):
        if node not in index:
            visit(node)
    return component


def node_classes(source, successors):
    """Classify every node reachable from ``source``.

    Returns a dict node -> SINGLE | MULTIPLE | RECURRING.
    """
    classification = classify_arcs(source, successors)
    nodes = classification.nodes
    adjacency = _reachable_arcs(classification)
    cyclic = set(_cycle_nodes(adjacency, nodes))
    # Recurring nodes: reachable from a cyclic node (or cyclic itself).
    recurring = set()
    stack = list(cyclic)
    while stack:
        node = stack.pop()
        if node in recurring:
            continue
        recurring.add(node)
        stack.extend(adjacency.get(node, ()))
    # Path counting on the remaining acyclic portion, in topological
    # order of ahead arcs (recurring nodes are excluded — their counts
    # are infinite).
    counts = {node: 0 for node in nodes}
    counts[source] = 1
    preds = {}
    for arc in classification.arcs:
        preds.setdefault(arc.target, []).append(arc.source)
    # Topological order over non-recurring nodes: repeated relaxation is
    # fine because the subgraph is acyclic; use DFS discovery order of
    # ahead arcs which is a topological order only for trees, so instead
    # do a Kahn-style pass.
    indegree = {node: 0 for node in nodes if node not in recurring}
    for node in indegree:
        for pred in preds.get(node, ()):
            if pred not in recurring and pred != node:
                indegree[node] += 1
    ready = [n for n, deg in indegree.items() if deg == 0]
    topo = []
    while ready:
        node = ready.pop()
        topo.append(node)
        for succ in adjacency.get(node, ()):
            if succ in indegree and succ != node:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
    for node in topo:
        if node == source:
            continue
        counts[node] = sum(
            counts[pred] for pred in preds.get(node, ())
            if pred not in recurring
        )
    classes = {}
    for node in nodes:
        if node in recurring:
            classes[node] = RECURRING
        elif counts[node] <= 1:
            classes[node] = SINGLE
        else:
            classes[node] = MULTIPLE
    return classes


def is_tree(source, successors):
    """True if every reachable node has exactly one path from source."""
    return all(
        cls == SINGLE for cls in node_classes(source, successors).values()
    )


def is_acyclic(source, successors):
    """True if the reachable subgraph has no cycle."""
    return classify_arcs(source, successors).is_acyclic()


def elementary_cycles(source, successors, limit=10000):
    """Enumerate elementary cycles of the reachable subgraph.

    A cycle is elementary if each node occurs only once.  Uses a simple
    DFS enumeration (adequate for the small graphs in tests and
    benchmarks); stops after ``limit`` cycles.
    """
    classification = classify_arcs(source, successors)
    adjacency = _reachable_arcs(classification)
    nodes = sorted(classification.nodes, key=repr)
    cycles = []
    for start in nodes:
        # Only enumerate cycles whose smallest node (in order) is start,
        # to avoid duplicates.
        start_rank = nodes.index(start)
        path = [start]
        on_path = {start}

        def search(node):
            if len(cycles) >= limit:
                return
            for succ in sorted(adjacency.get(node, ()), key=repr):
                rank = nodes.index(succ)
                if rank < start_rank:
                    continue
                if succ == start:
                    cycles.append(tuple(path))
                    continue
                if succ in on_path:
                    continue
                path.append(succ)
                on_path.add(succ)
                search(succ)
                path.pop()
                on_path.discard(succ)

        search(start)
    return cycles
