"""Graph substrate: DFS arc classification, node classes and query
graphs (Section 2 of the paper)."""

from .dfs import Arc, ArcClassification, adjacency_successors, classify_arcs
from .properties import (
    MULTIPLE,
    RECURRING,
    SINGLE,
    elementary_cycles,
    is_acyclic,
    is_tree,
    node_classes,
)
from .querygraph import (
    EdgeSpec,
    LeftGraph,
    QueryGraph,
    enumerate_arcs,
    left_classification,
)

__all__ = [
    "Arc",
    "ArcClassification",
    "EdgeSpec",
    "LeftGraph",
    "MULTIPLE",
    "QueryGraph",
    "RECURRING",
    "SINGLE",
    "adjacency_successors",
    "classify_arcs",
    "elementary_cycles",
    "enumerate_arcs",
    "is_acyclic",
    "is_tree",
    "left_classification",
    "node_classes",
]
