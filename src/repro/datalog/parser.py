"""Parser for the textual Datalog dialect used throughout the library.

Syntax summary (close to classical Datalog / the paper's notation)::

    % comments run to end of line
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    c_sg(a, 0).
    c_sg(X1, J) :- c_sg(X, I), up(X, X1), J is I + 1.
    p(Y, L)  :- q(Y1, [(r1, [W]) | L]), down1(Y1, Y, W).
    ans(Y)   :- reach(Y), not blocked(Y), Y != a.
    ?- sg(a, Y).

* identifiers starting with a lowercase letter are constants or
  predicate names; ``'quoted strings'`` are constants too;
* identifiers starting with an uppercase letter or ``_`` are variables;
* integers are numeric constants; arithmetic expressions use ``+ - *``;
* lists use ``[a, b]`` / ``[H | T]`` notation, tuples ``(a, b)``;
* comparison operators: ``= != < <= > >=``, plus ``is`` (arithmetic
  binding) and ``in`` (membership);
* ``not p(...)`` is negation as failure;
* a clause starting with ``?-`` is a query goal.

:func:`parse_program` returns a :class:`~repro.datalog.rules.Program`;
:func:`parse_query` parses program text containing exactly one ``?-``
goal and returns a :class:`~repro.datalog.rules.Query`.
"""

from ..errors import ParseError
from .atoms import COMPARISON_OPS, Atom, Comparison, Negation
from .rules import Program, Query, Rule
from .terms import Compound, Constant, Variable, make_list, make_tuple

_PUNCT = (
    ":-",
    "?-",
    "<=",
    ">=",
    "!=",
    "(",
    ")",
    "[",
    "]",
    "|",
    ",",
    ".",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
)


class _Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "_Token(%s, %r)" % (self.kind, self.value)


def _tokenize(text):
    tokens = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        col = i - line_start + 1
        if ch == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            # Quoted string constant.  A doubled quote inside the
            # literal is an escaped single quote (``'it''s'`` reads as
            # ``it's``), matching :func:`repro.datalog.pretty.
            # format_value` so quoted values round-trip through
            # ``Database.to_text``/``from_text``.
            parts = []
            j = i + 1
            while True:
                k = j
                while k < n and text[k] != "'":
                    k += 1
                if k >= n:
                    raise ParseError("unterminated string", line, col)
                parts.append(text[j:k])
                if k + 1 < n and text[k + 1] == "'":
                    parts.append("'")
                    j = k + 2
                    continue
                i = k + 1
                break
            value = "".join(parts)
            tokens.append(_Token("const", value, line, col))
            if "\n" in value:
                # Keep later tokens' positions honest when a literal
                # spans lines (columns restart after the closing quote).
                line += value.count("\n")
                line_start = text.rfind("\n", 0, i) + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(_Token("number", int(text[i:j]), line, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word == "not":
                tokens.append(_Token("not", word, line, col))
            elif word in ("is", "in"):
                tokens.append(_Token("op", word, line, col))
            elif word == "nil":
                # Bare nil is the None constant; the token carries the
                # value itself so the *quoted string* 'nil' (a "const"
                # token too, but with the str value) stays distinct and
                # round-trips through the pretty-printer's quoting.
                tokens.append(_Token("const", None, line, col))
            elif ch.isupper() or ch == "_":
                tokens.append(_Token("var", word, line, col))
            else:
                tokens.append(_Token("name", word, line, col))
            i = j
            continue
        matched = False
        for punct in _PUNCT:
            if text.startswith(punct, i):
                tokens.append(_Token(punct, punct, line, col))
                i += len(punct)
                matched = True
                break
        if not matched:
            raise ParseError("unexpected character %r" % ch, line, col)
    tokens.append(_Token("eof", None, line, n - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, text):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                "expected %r, found %r" % (kind, token.value),
                token.line,
                token.column,
            )
        return token

    def error(self, message):
        token = self.peek()
        raise ParseError(message, token.line, token.column)

    # ----- grammar -------------------------------------------------

    def parse_clauses(self):
        """Parse the whole input; returns (rules, goals)."""
        rules = []
        goals = []
        while self.peek().kind != "eof":
            if self.peek().kind == "?-":
                self.next()
                goals.append(self.atom())
                self.expect(".")
            else:
                rules.append(self.clause())
        return rules, goals

    def clause(self):
        head = self.atom()
        body = ()
        if self.peek().kind == ":-":
            self.next()
            body = self.body()
        self.expect(".")
        return Rule(head, body)

    def body(self):
        literals = [self.literal()]
        while self.peek().kind == ",":
            self.next()
            literals.append(self.literal())
        return tuple(literals)

    def literal(self):
        if self.peek().kind == "not":
            self.next()
            return Negation(self.atom())
        # Either an atom or a comparison; a comparison starts with a term.
        start = self.pos
        if self.peek().kind == "name":
            # Could be atom or constant-starting comparison; try atom first.
            atom = self.atom()
            if self.peek().kind in ("op",) or self.peek().value in (
                "=",
                "!=",
                "<",
                "<=",
                ">",
                ">=",
            ):
                # e.g. f(X) = Y is not supported; rewind and parse term cmp
                self.pos = start
            else:
                return atom
        left = self.expression()
        op_token = self.next()
        op = op_token.value
        if op not in COMPARISON_OPS:
            raise ParseError(
                "expected comparison operator, found %r" % (op,),
                op_token.line,
                op_token.column,
            )
        right = self.expression()
        return Comparison(op, left, right)

    def atom(self):
        name = self.expect("name").value
        args = ()
        if self.peek().kind == "(":
            self.next()
            if self.peek().kind == ")":
                self.next()
            else:
                parsed = [self.expression()]
                while self.peek().kind == ",":
                    self.next()
                    parsed.append(self.expression())
                self.expect(")")
                args = tuple(parsed)
        return Atom(name, args)

    def expression(self):
        """Additive expression over primary terms."""
        term = self.term()
        while self.peek().kind in ("+", "-"):
            op = self.next().kind
            right = self.term()
            term = Compound(op, (term, right))
        return term

    def term(self):
        term = self.primary()
        while self.peek().kind == "*":
            self.next()
            right = self.primary()
            term = Compound("*", (term, right))
        return term

    def primary(self):
        token = self.peek()
        if token.kind == "-":
            # Unary minus: negative literals and negated subterms.
            self.next()
            operand = self.primary()
            if isinstance(operand, Constant) and isinstance(
                operand.value, (int, float)
            ):
                return Constant(-operand.value)
            return Compound("-", (Constant(0), operand))
        if token.kind == "var":
            self.next()
            return Variable(token.value)
        if token.kind == "number":
            self.next()
            return Constant(token.value)
        if token.kind == "const":
            self.next()
            return Constant(token.value)
        if token.kind == "name":
            self.next()
            if self.peek().kind == "(":
                # A constructor-like ground structure is not supported in
                # terms; names in term position are plain constants.
                self.error("compound constants are not supported")
            return Constant(token.value)
        if token.kind == "[":
            return self.list_term()
        if token.kind == "(":
            self.next()
            items = [self.expression()]
            while self.peek().kind == ",":
                self.next()
                items.append(self.expression())
            self.expect(")")
            if len(items) == 1:
                return items[0]
            return make_tuple(items)
        self.error("expected a term, found %r" % (token.value,))

    def list_term(self):
        self.expect("[")
        if self.peek().kind == "]":
            self.next()
            return Constant(())
        items = [self.expression()]
        while self.peek().kind == ",":
            self.next()
            items.append(self.expression())
        tail = Constant(())
        if self.peek().kind == "|":
            self.next()
            tail = self.expression()
        self.expect("]")
        return make_list(items, tail)


def parse_program(text):
    """Parse ``text`` into a :class:`Program` (queries not allowed)."""
    rules, goals = _Parser(text).parse_clauses()
    if goals:
        raise ParseError("unexpected query goal in program text")
    return Program(rules)


def parse_query(text):
    """Parse ``text`` containing rules and exactly one ``?-`` goal."""
    rules, goals = _Parser(text).parse_clauses()
    if len(goals) != 1:
        raise ParseError(
            "expected exactly one ?- goal, found %d" % len(goals)
        )
    return Query(goals[0], Program(rules))


def parse_atom(text):
    """Parse a single atom, e.g. ``"sg(a, Y)"``."""
    parser = _Parser(text)
    atom = parser.atom()
    if parser.peek().kind != "eof":
        parser.error("trailing input after atom")
    return atom
