"""Static analysis of programs: dependency graph, recursive cliques,
exit/recursive rule classification and linearity.

Definitions follow Section 2 of the paper:

* a predicate ``p`` *depends on* ``q`` if some rule has ``p`` in the head
  and ``q`` in the body, or transitively so;
* ``p`` and ``q`` are *mutually recursive* if each depends on the other
  (a predicate depending on itself is mutually recursive with itself);
* the program is partitioned into components following a topological
  order of the strongly connected components of the dependency graph;
* a rule is an *exit rule* of its component if no body predicate belongs
  to the same component, otherwise a *recursive rule*;
* a recursive rule is *linear* if its body contains at most one
  predicate mutually recursive with the head.
"""

from ..errors import AnalysisError
from .atoms import Atom


class RecursiveClique:
    """One strongly connected component of derived predicates.

    Attributes
    ----------
    predicates : frozenset of (name, arity) keys in the component.
    exit_rules : rules of the component with no recursive body atom.
    recursive_rules : the remaining rules of the component.
    """

    __slots__ = ("predicates", "exit_rules", "recursive_rules")

    def __init__(self, predicates, exit_rules, recursive_rules):
        self.predicates = frozenset(predicates)
        self.exit_rules = tuple(exit_rules)
        self.recursive_rules = tuple(recursive_rules)

    @property
    def rules(self):
        return self.exit_rules + self.recursive_rules

    def is_recursive(self):
        return bool(self.recursive_rules)

    def is_linear(self):
        """True if every recursive rule has exactly one recursive atom."""
        for rule in self.recursive_rules:
            count = sum(
                1
                for atom in rule.body_atoms()
                if atom.key in self.predicates
            )
            if count > 1:
                return False
        return True

    def recursive_atom(self, rule):
        """The single recursive body atom of a linear recursive rule."""
        found = [
            atom for atom in rule.body_atoms() if atom.key in self.predicates
        ]
        if len(found) != 1:
            raise AnalysisError(
                "rule %r is not linear in clique %r"
                % (rule, sorted(self.predicates))
            )
        return found[0]

    def split_body(self, rule):
        """Split a linear rule body into (left, recursive atom, right).

        The split is positional: literals before the recursive atom form
        the left part, literals after it the right part.  The paper
        assumes rules have been put in this form; use
        :func:`canonicalize_rule` in :mod:`repro.rewriting.canonical` to
        reorder bodies whose literals are out of place.
        """
        rec = self.recursive_atom(rule)
        index = None
        for i, lit in enumerate(rule.body):
            if lit is rec or (isinstance(lit, Atom) and lit == rec):
                index = i
                break
        if index is None:
            raise AnalysisError("recursive atom not found in body")
        return rule.body[:index], rule.body[index], rule.body[index + 1 :]

    def __repr__(self):
        return "RecursiveClique(%s)" % ", ".join(
            "%s/%d" % key for key in sorted(self.predicates)
        )


class ProgramAnalysis:
    """Dependency structure of a program.

    ``components`` lists the recursive cliques of *derived* predicates in
    topological (bottom-up) order: each component only depends on earlier
    components and on base predicates.
    """

    def __init__(self, program):
        self.program = program
        self.derived = program.head_predicates()
        self._graph = self._dependency_graph()
        self._sccs = _tarjan_sccs(self._graph)
        self._component_of = {}
        for index, scc in enumerate(self._sccs):
            for key in scc:
                self._component_of[key] = index
        self.components = tuple(
            self._make_clique(scc) for scc in self._sccs
        )

    def _dependency_graph(self):
        graph = {key: set() for key in self.derived}
        for rule in self.program:
            head = rule.head.key
            if head not in graph:
                continue
            for atom in rule.body_atoms() + rule.negated_atoms():
                if atom.key in self.derived:
                    graph[head].add(atom.key)
        return graph

    def _make_clique(self, scc):
        scc = frozenset(scc)
        exit_rules = []
        recursive_rules = []
        for key in sorted(scc):
            for rule in self.program.rules_for(key):
                if rule.is_fact() and rule.head.is_ground():
                    continue
                has_rec = any(
                    atom.key in scc for atom in rule.body_atoms()
                )
                if has_rec:
                    recursive_rules.append(rule)
                else:
                    exit_rules.append(rule)
        return RecursiveClique(scc, exit_rules, recursive_rules)

    def clique_of(self, key):
        """The clique containing predicate ``key`` (or None for base)."""
        index = self._component_of.get(key)
        if index is None:
            return None
        return self.components[index]

    def depends_on(self, p, q):
        """True if predicate ``p`` (transitively) depends on ``q``."""
        seen = set()
        stack = [p]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for succ in self._graph.get(current, ()):
                if succ == q:
                    return True
                stack.append(succ)
        return False

    def mutually_recursive(self, p, q):
        clique = self.clique_of(p)
        return clique is not None and q in clique.predicates

    def recursive_cliques(self):
        """Cliques that contain at least one recursive rule."""
        return tuple(c for c in self.components if c.is_recursive())

    def is_linear(self):
        """True if every recursive rule of the program is linear."""
        return all(c.is_linear() for c in self.components)

    def base_predicates(self):
        """Predicate keys used in bodies but never derived."""
        return self.program.body_predicates() - self.derived


def _tarjan_sccs(graph):
    """Tarjan's algorithm; returns SCCs in topological (callee-first)
    order, i.e. a component appears after everything it depends on
    appears... in reverse: Tarjan emits SCCs in reverse topological
    order of the condensation, which for a dependency graph (edges point
    at dependencies) means *dependencies first* — exactly the bottom-up
    evaluation order we need.
    """
    index_counter = [0]
    stack = []
    lowlink = {}
    index = {}
    on_stack = set()
    result = []

    def visit(node):
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[current] = min(lowlink[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == current:
                        break
                result.append(frozenset(scc))

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return result
