"""Unification and substitution over terms.

Substitutions are plain dicts mapping variable names to terms.  They are
treated functionally: :func:`unify` returns a *new* dict (or ``None`` on
failure) and never mutates its input, which keeps backtracking in the
join machinery trivial.

Ground structured values interoperate with term-level constructors:

* a cons cell ``[H | T]`` unifies with a ``Constant`` holding a non-empty
  Python tuple by decomposing it into first element and rest;
* a ``tuple(…)`` term unifies with a ``Constant`` holding a Python tuple
  of the same width, element-wise.

This is what lets the generic engine run the extended counting programs,
whose path arguments are lists of ``(rule, shared-values)`` pairs stored
as nested tuples.
"""

from .terms import (
    CONS,
    TUPLE,
    Compound,
    Constant,
    Variable,
    ground_value,
)


def walk(term, subst):
    """Follow variable bindings until a non-variable or unbound var."""
    while isinstance(term, Variable):
        bound = subst.get(term.name)
        if bound is None:
            return term
        term = bound
    return term


def unify(left, right, subst):
    """Unify two terms under ``subst``; return extended subst or None."""
    left = walk(left, subst)
    right = walk(right, subst)
    if isinstance(left, Variable):
        if isinstance(right, Variable) and right.name == left.name:
            return subst
        new = dict(subst)
        new[left.name] = right
        return new
    if isinstance(right, Variable):
        new = dict(subst)
        new[right.name] = left
        return new
    if isinstance(left, Constant) and isinstance(right, Constant):
        return subst if left.value == right.value else None
    if isinstance(left, Compound) and isinstance(right, Compound):
        if left.functor != right.functor or len(left.args) != len(right.args):
            return None
        for a, b in zip(left.args, right.args):
            subst = unify(a, b, subst)
            if subst is None:
                return None
        return subst
    # Structured constant vs compound pattern: decompose the constant.
    if isinstance(left, Constant):
        left, right = right, left
    if isinstance(left, Compound) and isinstance(right, Constant):
        value = right.value
        if left.functor == CONS and isinstance(value, tuple) and value:
            subst = unify(left.args[0], Constant(value[0]), subst)
            if subst is None:
                return None
            return unify(left.args[1], Constant(value[1:]), subst)
        if (
            left.functor == TUPLE
            and isinstance(value, tuple)
            and len(value) == len(left.args)
        ):
            for a, v in zip(left.args, value):
                subst = unify(a, Constant(v), subst)
                if subst is None:
                    return None
            return subst
        return None
    return None


def match_value(term, value, subst):
    """Unify ``term`` with the plain Python ``value``.

    Semantically identical to ``unify(term, Constant(value), subst)``
    but skips the wrapper allocation for the hot flat cases (variable
    binding and constant comparison), which is what the tuple-at-a-time
    join path does once per open position per candidate row.
    """
    term = walk(term, subst)
    if isinstance(term, Variable):
        new = dict(subst)
        new[term.name] = Constant(value)
        return new
    if isinstance(term, Constant):
        return subst if term.value == value else None
    if isinstance(term, Compound):
        if term.functor == CONS and isinstance(value, tuple) and value:
            subst = match_value(term.args[0], value[0], subst)
            if subst is None:
                return None
            return match_value(term.args[1], value[1:], subst)
        if (
            term.functor == TUPLE
            and isinstance(value, tuple)
            and len(value) == len(term.args)
        ):
            for arg, element in zip(term.args, value):
                subst = match_value(arg, element, subst)
                if subst is None:
                    return None
            return subst
        # Arithmetic / unknown functors never unify with a stored value.
        return None
    return None


def substitute(term, subst):
    """Apply ``subst`` to ``term`` recursively (no arithmetic folding)."""
    term = walk(term, subst)
    if isinstance(term, Compound):
        return Compound(
            term.functor,
            tuple(substitute(arg, subst) for arg in term.args),
        )
    return term


def resolve(term, subst):
    """Substitute and normalize: ground compounds fold to constants.

    A ground cons chain becomes a tuple constant, a ground tuple term a
    tuple constant, and a ground arithmetic expression its numeric value.
    Non-ground terms are returned with substitution applied.
    """
    term = substitute(term, subst)
    if isinstance(term, Compound) and term.is_ground():
        return Constant(ground_value(term))
    return term


def resolve_value(term, subst):
    """Resolve ``term`` to a ground Python value; raise if non-ground."""
    return ground_value(substitute(term, subst))


def is_bound(term, subst):
    """True if ``term`` is ground under ``subst``."""
    return substitute(term, subst).is_ground()


def rename_apart(rule, suffix):
    """Return a copy of ``rule`` with every variable renamed by ``suffix``.

    Used by rewritings that splice rule bodies together and must avoid
    accidental variable capture.
    """
    from .atoms import Atom, Comparison, Negation
    from .rules import Rule

    def rename_term(term):
        if isinstance(term, Variable):
            return Variable(term.name + suffix)
        if isinstance(term, Compound):
            return Compound(
                term.functor, tuple(rename_term(a) for a in term.args)
            )
        return term

    def rename_literal(lit):
        if isinstance(lit, Atom):
            return Atom(lit.pred, tuple(rename_term(a) for a in lit.args))
        if isinstance(lit, Negation):
            return Negation(rename_literal(lit.atom))
        if isinstance(lit, Comparison):
            return Comparison(
                lit.op, rename_term(lit.left), rename_term(lit.right)
            )
        raise TypeError("unknown literal %r" % (lit,))

    return Rule(
        rename_literal(rule.head),
        tuple(rename_literal(lit) for lit in rule.body),
        label=rule.label,
    )
