"""Literals: atoms, negated atoms, comparisons and membership tests.

A rule body is a sequence of literals.  Three literal kinds exist:

* :class:`Atom` — a predicate applied to terms; the positive building
  block of bodies and the only legal head.
* :class:`Negation` — negation-as-failure over an atom; only allowed on
  predicates of strictly lower strata (checked by the engine).
* :class:`Comparison` — built-in relations between two terms.  The
  operator set includes ``is`` (arithmetic assignment, binding its left
  variable), the usual orderings, and ``in`` (set/list membership, used
  by the cyclic counting method's ``A  in  T`` goals).
"""

from .terms import Term, Variable

#: Comparison operators that only test already-bound values.
TEST_OPS = ("=", "!=", "<", "<=", ">", ">=")
#: Operators that may bind a variable on their left side.
BINDING_OPS = ("is", "in")
#: All comparison operators.
COMPARISON_OPS = TEST_OPS + BINDING_OPS


class Literal:
    """Abstract base class of body literals."""

    __slots__ = ()

    def variables(self):
        raise NotImplementedError

    def iter_variables(self):
        """Yield variable names in occurrence order (with repeats)."""
        raise NotImplementedError


class Atom(Literal):
    """A predicate applied to a tuple of terms."""

    __slots__ = ("pred", "args")

    def __init__(self, pred, args=()):
        self.pred = pred
        self.args = tuple(args)
        for arg in self.args:
            if not isinstance(arg, Term):
                raise TypeError("atom argument is not a Term: %r" % (arg,))

    @property
    def arity(self):
        return len(self.args)

    @property
    def key(self):
        """The (name, arity) pair identifying the predicate."""
        return (self.pred, len(self.args))

    def variables(self):
        names = set()
        for arg in self.args:
            names |= arg.variables()
        return names

    def iter_variables(self):
        for arg in self.args:
            yield from arg.iter_variables()

    def is_ground(self):
        return all(arg.is_ground() for arg in self.args)

    def with_args(self, args):
        """Return a copy of this atom with different arguments."""
        return Atom(self.pred, args)

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and other.pred == self.pred
            and other.args == self.args
        )

    def __hash__(self):
        return hash(("atom", self.pred, self.args))

    def __repr__(self):
        return "Atom(%r, %r)" % (self.pred, self.args)


class Negation(Literal):
    """Negation-as-failure: ``not atom``."""

    __slots__ = ("atom",)

    def __init__(self, atom):
        if not isinstance(atom, Atom):
            raise TypeError("negation must wrap an Atom")
        self.atom = atom

    def variables(self):
        return self.atom.variables()

    def iter_variables(self):
        return self.atom.iter_variables()

    def __eq__(self, other):
        return isinstance(other, Negation) and other.atom == self.atom

    def __hash__(self):
        return hash(("neg", self.atom))

    def __repr__(self):
        return "Negation(%r)" % (self.atom,)


class Comparison(Literal):
    """A built-in comparison ``left op right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in COMPARISON_OPS:
            raise ValueError("unknown comparison operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def variables(self):
        return self.left.variables() | self.right.variables()

    def iter_variables(self):
        yield from self.left.iter_variables()
        yield from self.right.iter_variables()

    def binds_left(self):
        """True if the operator may bind an unbound left variable."""
        return self.op in BINDING_OPS and isinstance(self.left, Variable)

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("cmp", self.op, self.left, self.right))

    def __repr__(self):
        return "Comparison(%r, %r, %r)" % (self.op, self.left, self.right)
