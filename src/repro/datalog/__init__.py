"""Datalog language layer: terms, literals, rules, parsing, printing,
unification and static analysis."""

from .atoms import Atom, Comparison, Literal, Negation
from .analysis import ProgramAnalysis, RecursiveClique
from .parser import parse_atom, parse_program, parse_query
from .pretty import (
    format_atom,
    format_literal,
    format_program,
    format_query,
    format_rule,
    format_term,
    pprint,
)
from .rules import Program, Query, Rule
from .safety import check_program_safety, check_rule_safety, is_safe
from .transform import (
    rename_predicates,
    unfold_all_nonrecursive,
    unfold_predicate,
)
from .terms import (
    NIL,
    Compound,
    Constant,
    Term,
    Variable,
    cons,
    ground_value,
    make_list,
    make_tuple,
)
from .unify import rename_apart, resolve, substitute, unify, walk

__all__ = [
    "Atom",
    "Comparison",
    "Compound",
    "Constant",
    "Literal",
    "NIL",
    "Negation",
    "Program",
    "ProgramAnalysis",
    "Query",
    "RecursiveClique",
    "Rule",
    "Term",
    "Variable",
    "check_program_safety",
    "check_rule_safety",
    "cons",
    "format_atom",
    "format_literal",
    "format_program",
    "format_query",
    "format_rule",
    "format_term",
    "ground_value",
    "is_safe",
    "make_list",
    "make_tuple",
    "parse_atom",
    "parse_program",
    "parse_query",
    "pprint",
    "rename_apart",
    "rename_predicates",
    "unfold_all_nonrecursive",
    "unfold_predicate",
    "resolve",
    "substitute",
    "unify",
    "walk",
]
