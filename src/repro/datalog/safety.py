"""Safety (range restriction) checking.

A rule is *safe* when, processing body literals left to right:

* every variable of a positive atom becomes bound after the atom;
* a negated atom and a test comparison only mention already-bound
  variables;
* ``X is Expr`` requires ``Expr``'s variables bound and then binds ``X``;
* ``X in S`` requires ``S`` bound and then binds ``X``;
* after the whole body, every head variable is bound.

This mirrors the paper's safety conditions ``Y ⊆ (A ∪ Y1 ∪ B)`` and
``X1 ⊆ (X ∪ A)`` for canonical linear rules, generalized to arbitrary
bodies.  The engine relies on safe rules: it evaluates literals left to
right and expects negation/comparison arguments to be ground when
reached.
"""

from ..errors import SafetyError
from .atoms import Atom, Comparison, Negation
from .terms import Compound, Variable


def _pattern_vars(term):
    """Variables of a term as used in a matching position.

    All variables of atoms' argument terms become bound by a successful
    match (list and tuple patterns decompose ground values).
    """
    return term.variables()


def check_rule_safety(rule, bound_head_vars=()):
    """Raise :class:`SafetyError` if ``rule`` is unsafe.

    ``bound_head_vars`` are head variables assumed bound by the caller
    (e.g. by an adornment); they seed the bound set.
    """
    bound = set(bound_head_vars)
    for lit in rule.body:
        if isinstance(lit, Atom):
            bound |= lit.variables()
        elif isinstance(lit, Negation):
            free = lit.variables() - bound
            if free:
                raise SafetyError(
                    "negated atom %s uses unbound variables %s in rule %r"
                    % (lit.atom.pred, sorted(free), rule)
                )
        elif isinstance(lit, Comparison):
            _check_comparison(lit, bound, rule)
        else:
            raise SafetyError("unknown literal %r" % (lit,))
    free_head = rule.head.variables() - bound
    if free_head:
        raise SafetyError(
            "head variables %s of %s are unbound"
            % (sorted(free_head), rule.head.pred)
        )


def _check_comparison(lit, bound, rule):
    right_free = lit.right.variables() - bound
    if lit.op in ("is", "in"):
        if right_free:
            raise SafetyError(
                "right side of %r uses unbound variables %s in rule %r"
                % (lit.op, sorted(right_free), rule)
            )
        if isinstance(lit.left, Variable):
            bound.add(lit.left.name)
        else:
            left_free = lit.left.variables() - bound
            if left_free:
                raise SafetyError(
                    "left side of %r uses unbound variables %s in rule %r"
                    % (lit.op, sorted(left_free), rule)
                )
        return
    free = (lit.left.variables() | lit.right.variables()) - bound
    if lit.op == "=":
        # '=' may bind one plain-variable side from the other.
        left_free = lit.left.variables() - bound
        if not right_free and isinstance(lit.left, Variable):
            bound.add(lit.left.name)
            return
        if not left_free and isinstance(lit.right, Variable):
            bound.add(lit.right.name)
            return
        if not free:
            return
        raise SafetyError(
            "'=' cannot bind variables %s in rule %r"
            % (sorted(free), rule)
        )
    if free:
        raise SafetyError(
            "comparison %s uses unbound variables %s in rule %r"
            % (lit.op, sorted(free), rule)
        )


def check_program_safety(program):
    """Check every rule of ``program``; raises on the first unsafe rule."""
    for rule in program:
        check_rule_safety(rule)


def is_safe(program_or_rule):
    """Boolean convenience wrapper around the checking functions."""
    try:
        if hasattr(program_or_rule, "rules"):
            check_program_safety(program_or_rule)
        else:
            check_rule_safety(program_or_rule)
    except SafetyError:
        return False
    return True


def head_expression_vars(rule):
    """Variables used inside arithmetic expressions in the head.

    Heads may contain expressions such as ``c_sg(X1, I + 1)``; those
    expressions must be ground at emission time, which safety guarantees
    because all their variables must be bound by the body.
    """
    names = set()
    for arg in rule.head.args:
        if isinstance(arg, Compound):
            names |= arg.variables()
    return names
