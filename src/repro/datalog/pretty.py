"""Pretty-printer: turns terms, literals, rules and programs back into
the textual syntax accepted by :mod:`repro.datalog.parser`.

The printer is the inverse of the parser for every construct the parser
accepts (round-tripping is covered by property tests), and it renders
ground structured values (tuples, nested tuples, frozensets) with the
paper's ``[..]`` / ``(..)`` / ``{..}`` notation so rewritten programs
read like the ones printed in the paper.
"""

from .atoms import Atom, Comparison, Negation
from .rules import Program, Query, Rule
from .terms import CONS, TUPLE, Compound, Constant, Variable

#: Words the lexer treats as syntax, never as bare constants.  A string
#: value spelling one of these must be quoted or it would parse back as
#: the keyword (``nil`` → the ``None`` constant, ``not``/``is``/``in``
#: → operators) and break the to_text/from_text round trip.
RESERVED_WORDS = frozenset(("nil", "not", "is", "in"))


def format_value(value):
    """Render a ground Python value in program syntax.

    Inverse of the parser's constant syntax: ``parse`` of the rendered
    text yields an equal value.  Strings that are not plain lowercase
    identifiers (or that collide with a reserved word) are quoted, with
    embedded quotes doubled (``it's`` → ``'it''s'``) per the lexer's
    escape rule.
    """
    if value is None:
        return "nil"
    if isinstance(value, tuple):
        return "[%s]" % ", ".join(format_value(v) for v in value)
    if isinstance(value, frozenset):
        inner = ", ".join(sorted(format_value(v) for v in value))
        return "{%s}" % inner
    if isinstance(value, str):
        # The unquoted form must be exactly what the lexer reads back
        # as a name constant: a lowercase-alpha start and word chars
        # throughout.  Python's str.isidentifier() is the wrong test —
        # it admits characters (e.g. U+00B7) the lexer rejects.
        if (
            value
            and value[0].isalpha()
            and value[0].islower()
            and all(ch.isalnum() or ch == "_" for ch in value)
            and value not in RESERVED_WORDS
        ):
            return value
        return "'%s'" % value.replace("'", "''")
    return str(value)


def format_term(term):
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        return format_value(term.value)
    if isinstance(term, Compound):
        if term.functor == CONS:
            return _format_list(term)
        if term.functor == TUPLE:
            return "(%s)" % ", ".join(format_term(a) for a in term.args)
        if len(term.args) == 2:
            return "%s %s %s" % (
                format_term(term.args[0]),
                term.functor,
                format_term(term.args[1]),
            )
        return "%s(%s)" % (
            term.functor,
            ", ".join(format_term(a) for a in term.args),
        )
    return repr(term)


def _format_list(term):
    items = []
    while isinstance(term, Compound) and term.functor == CONS:
        items.append(format_term(term.args[0]))
        term = term.args[1]
    if isinstance(term, Constant) and term.value == ():
        return "[%s]" % ", ".join(items)
    if isinstance(term, Constant) and isinstance(term.value, tuple):
        items.extend(format_value(v) for v in term.value)
        return "[%s]" % ", ".join(items)
    return "[%s | %s]" % (", ".join(items), format_term(term))


def format_atom(atom):
    if not atom.args:
        return atom.pred
    return "%s(%s)" % (
        atom.pred,
        ", ".join(format_term(a) for a in atom.args),
    )


def format_literal(lit):
    if isinstance(lit, Atom):
        return format_atom(lit)
    if isinstance(lit, Negation):
        return "not %s" % format_atom(lit.atom)
    if isinstance(lit, Comparison):
        return "%s %s %s" % (
            format_term(lit.left),
            lit.op,
            format_term(lit.right),
        )
    return repr(lit)


def format_rule(rule):
    head = format_atom(rule.head)
    if rule.is_fact():
        return "%s." % head
    body = ", ".join(format_literal(lit) for lit in rule.body)
    return "%s :- %s." % (head, body)


def format_program(program, show_labels=False):
    lines = []
    for rule in program:
        text = format_rule(rule)
        if show_labels and rule.label:
            text = "%-4s %s" % (rule.label + ":", text)
        lines.append(text)
    return "\n".join(lines)


def format_query(query, show_labels=False):
    return "%s\n?- %s." % (
        format_program(query.program, show_labels=show_labels),
        format_atom(query.goal),
    )


def pprint(obj):
    """Print any AST object (term, literal, rule, program, query)."""
    if isinstance(obj, Query):
        print(format_query(obj))
    elif isinstance(obj, Program):
        print(format_program(obj))
    elif isinstance(obj, Rule):
        print(format_rule(obj))
    elif isinstance(obj, (Atom, Negation, Comparison)):
        print(format_literal(obj))
    else:
        print(format_term(obj))
