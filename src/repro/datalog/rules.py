"""Rules, programs and queries.

A :class:`Program` is an immutable collection of rules; facts may be
written as rules with empty bodies but are normally kept in a
:class:`~repro.engine.database.Database`.  A :class:`Query` pairs a goal
atom with a program, following the paper's definition of a query as a
pair ``(G, P)``.
"""

from .atoms import Atom, Comparison, Literal, Negation
from .terms import Constant


class Rule:
    """A Horn rule ``head :- body`` (a fact when the body is empty)."""

    __slots__ = ("head", "body", "label")

    def __init__(self, head, body=(), label=None):
        if not isinstance(head, Atom):
            raise TypeError("rule head must be an Atom")
        body = tuple(body)
        for lit in body:
            if not isinstance(lit, Literal):
                raise TypeError("body element is not a Literal: %r" % (lit,))
        self.head = head
        self.body = body
        #: Optional rule identifier (``r1``, ``c0``, ...) used by the
        #: counting rewritings to tag path-argument entries.
        self.label = label

    def is_fact(self):
        return not self.body

    def variables(self):
        names = self.head.variables()
        for lit in self.body:
            names |= lit.variables()
        return names

    def body_atoms(self):
        """Positive atoms of the body, in order."""
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def negated_atoms(self):
        return tuple(
            lit.atom for lit in self.body if isinstance(lit, Negation)
        )

    def comparisons(self):
        return tuple(
            lit for lit in self.body if isinstance(lit, Comparison)
        )

    def with_label(self, label):
        return Rule(self.head, self.body, label=label)

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self):
        return hash(("rule", self.head, self.body))

    def __repr__(self):
        return "Rule(%r, %r)" % (self.head, self.body)


class Program:
    """An immutable sequence of rules.

    Facts written in program text are carried as empty-body rules; the
    engine moves ground facts for base predicates into the database
    automatically.
    """

    __slots__ = ("rules",)

    def __init__(self, rules=()):
        rules = tuple(rules)
        labeled = []
        counter = 0
        for rule in rules:
            if not isinstance(rule, Rule):
                raise TypeError("program element is not a Rule: %r" % (rule,))
            if rule.label is None:
                rule = rule.with_label("r%d" % counter)
            counter += 1
            labeled.append(rule)
        self.rules = tuple(labeled)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def head_predicates(self):
        """Keys of predicates defined by at least one rule with a body.

        Predicates defined exclusively by ground facts are considered
        base predicates, following the paper's definition.
        """
        keys = set()
        for rule in self.rules:
            if rule.body or not rule.head.is_ground():
                keys.add(rule.head.key)
        return keys

    def derived_predicates(self):
        """All predicate keys appearing in some rule head."""
        return {rule.head.key for rule in self.rules}

    def body_predicates(self):
        keys = set()
        for rule in self.rules:
            for atom in rule.body_atoms() + rule.negated_atoms():
                keys.add(atom.key)
        return keys

    def rules_for(self, key):
        """Rules whose head predicate key equals ``key``."""
        return tuple(r for r in self.rules if r.head.key == key)

    def facts(self):
        """Ground empty-body rules, as (key, value-tuple) pairs."""
        from .terms import ground_value

        out = []
        for rule in self.rules:
            if rule.is_fact() and rule.head.is_ground():
                values = tuple(ground_value(a) for a in rule.head.args)
                out.append((rule.head.key, values))
        return out

    def without_facts(self):
        """A copy of this program with ground facts removed."""
        return Program(
            r
            for r in self.rules
            if r.body or not r.head.is_ground()
        )

    def extended(self, rules):
        """A new program with ``rules`` appended."""
        return Program(self.rules + tuple(rules))

    def __eq__(self, other):
        return isinstance(other, Program) and other.rules == self.rules

    def __repr__(self):
        return "Program(%d rules)" % len(self.rules)


class Query:
    """A query ``(goal, program)``.

    The goal is an atom; bound arguments are constants, free arguments
    variables.  ``sg(a, Y)`` asks for all ``Y`` with ``sg(a, Y)`` true in
    the minimal model of the program plus the database.
    """

    __slots__ = ("goal", "program")

    def __init__(self, goal, program):
        if not isinstance(goal, Atom):
            raise TypeError("query goal must be an Atom")
        if not isinstance(program, Program):
            raise TypeError("query program must be a Program")
        self.goal = goal
        self.program = program

    def bound_positions(self):
        """Indexes of goal arguments that are constants."""
        return tuple(
            i
            for i, arg in enumerate(self.goal.args)
            if isinstance(arg, Constant)
        )

    def adornment(self):
        """The goal's adornment string, e.g. ``"bf"`` for ``sg(a, Y)``."""
        return "".join(
            "b" if isinstance(arg, Constant) else "f"
            for arg in self.goal.args
        )

    def __repr__(self):
        return "Query(%r)" % (self.goal,)
