"""Whole-query validation and method-applicability diagnostics.

:func:`validate_query` bundles every static check the pipeline relies
on — parseability is assumed (the caller holds an AST), then safety,
stratification, recursion structure and, per rewriting method, the
applicability verdict with the reason a method is ruled out.  The CLI's
``check`` subcommand renders the report; libraries embedding repro can
use it to explain *why* a query will or won't benefit from counting
before touching any data.
"""

from ..errors import NotApplicableError, NotStratifiedError, SafetyError
from .analysis import ProgramAnalysis
from .rules import Query
from .safety import check_rule_safety


class MethodVerdict:
    """Applicability of one rewriting method to a query."""

    __slots__ = ("method", "applicable", "reason")

    def __init__(self, method, applicable, reason):
        self.method = method
        self.applicable = applicable
        self.reason = reason

    def __repr__(self):
        flag = "yes" if self.applicable else "no"
        return "MethodVerdict(%s: %s — %s)" % (self.method, flag,
                                               self.reason)


class ValidationReport:
    """Everything :func:`validate_query` found out."""

    __slots__ = ("query", "safety_errors", "stratification_error",
                 "is_linear", "goal_is_recursive", "clique_predicates",
                 "rule_shapes", "verdicts")

    def __init__(self, query):
        self.query = query
        #: list of (rule label, message) pairs.
        self.safety_errors = []
        self.stratification_error = None
        self.is_linear = False
        self.goal_is_recursive = False
        self.clique_predicates = ()
        #: rule label -> right-linear/left-linear/general (goal clique).
        self.rule_shapes = {}
        #: list of :class:`MethodVerdict`, counting methods + magic.
        self.verdicts = []

    def ok(self):
        """True when the query can be evaluated at all."""
        return not self.safety_errors and \
            self.stratification_error is None

    def verdict_for(self, method):
        for verdict in self.verdicts:
            if verdict.method == method:
                return verdict
        raise KeyError(method)

    def render(self):
        lines = []
        if self.safety_errors:
            for label, message in self.safety_errors:
                lines.append("UNSAFE %s: %s" % (label, message))
        if self.stratification_error:
            lines.append("NOT STRATIFIED: %s" % self.stratification_error)
        if self.ok():
            lines.append("program is safe and stratified")
        lines.append(
            "goal %s recursive; program %s linear"
            % ("is" if self.goal_is_recursive else "is not",
               "is" if self.is_linear else "is not")
        )
        if self.clique_predicates:
            lines.append(
                "goal clique: %s"
                % ", ".join(
                    "%s/%d" % key for key in sorted(self.clique_predicates)
                )
            )
        for label, shape in sorted(self.rule_shapes.items()):
            lines.append("rule %s: %s" % (label, shape))
        for verdict in self.verdicts:
            flag = "applicable" if verdict.applicable else "ruled out"
            lines.append(
                "%-20s %s (%s)" % (verdict.method, flag, verdict.reason)
            )
        return "\n".join(lines)


def validate_query(query):
    """Build a :class:`ValidationReport` for ``query``."""
    if not isinstance(query, Query):
        raise TypeError("expected a Query")
    report = ValidationReport(query)

    for rule in query.program:
        try:
            check_rule_safety(rule)
        except SafetyError as exc:
            report.safety_errors.append((rule.label, str(exc)))

    analysis = ProgramAnalysis(query.program)
    from ..engine.stratify import check_stratified

    try:
        check_stratified(analysis)
    except NotStratifiedError as exc:
        report.stratification_error = str(exc)
    report.is_linear = analysis.is_linear()

    if not report.ok():
        report.verdicts.append(
            MethodVerdict("naive", False, "program is invalid")
        )
        return report

    report.verdicts.append(
        MethodVerdict("naive", True, "always applicable")
    )
    report.verdicts.append(
        MethodVerdict("magic", True, "always applicable")
    )

    from ..rewriting.adornment import adorn_query
    from ..rewriting.canonical import canonicalize_clique
    from ..rewriting.counting import check_classical_applicability
    from ..rewriting.linearity import clique_shapes, is_mixed_linear
    from ..rewriting.support import goal_clique_of

    adorned = adorn_query(query)
    try:
        clique, _support = goal_clique_of(adorned)
    except NotApplicableError as exc:
        reason = str(exc)
        for method in ("classical_counting", "extended_counting",
                       "cyclic_counting", "reduced_counting"):
            report.verdicts.append(MethodVerdict(method, False, reason))
        return report
    report.goal_is_recursive = True
    report.clique_predicates = tuple(clique.predicates)

    try:
        canonical = canonicalize_clique(clique, adorned)
    except NotApplicableError as exc:
        reason = str(exc)
        from ..rewriting.linearize import is_square_rule

        if any(is_square_rule(rule) for rule in clique.recursive_rules):
            reason += (
                "; however the clique contains a square rule — "
                "`optimize` will try square-rule linearization before "
                "falling back to magic"
            )
        for method in ("classical_counting", "extended_counting",
                       "cyclic_counting", "reduced_counting"):
            report.verdicts.append(MethodVerdict(method, False, reason))
        return report

    report.rule_shapes = clique_shapes(canonical)

    try:
        check_classical_applicability(canonical)
        report.verdicts.append(
            MethodVerdict(
                "classical_counting", True,
                "single rule, no shared variables; needs acyclic data",
            )
        )
    except NotApplicableError as exc:
        report.verdicts.append(
            MethodVerdict("classical_counting", False, str(exc))
        )

    report.verdicts.append(
        MethodVerdict(
            "extended_counting", True,
            "linear clique; needs an acyclic left graph at run time",
        )
    )
    report.verdicts.append(
        MethodVerdict(
            "cyclic_counting", True,
            "linear clique; applies to cyclic data too (Algorithm 2)",
        )
    )
    if is_mixed_linear(canonical):
        report.verdicts.append(
            MethodVerdict(
                "reduced_counting", True,
                "mixed-linear clique: the path argument disappears "
                "(Algorithm 3); safe on any data",
            )
        )
    else:
        report.verdicts.append(
            MethodVerdict(
                "reduced_counting", True,
                "reduction applies but the path argument survives; "
                "needs an acyclic left graph at run time",
            )
        )
    return report
