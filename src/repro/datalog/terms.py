"""Term representation for Datalog programs.

The term language is deliberately small but covers everything the paper's
rewritten programs need:

* :class:`Constant` — an arbitrary hashable Python value.  Ground lists are
  represented as Python tuples (the empty list is ``()``), ground pairs
  such as the ``(rule, shared-values)`` entries of a path argument are also
  tuples, and ground sets (used by the cyclic counting method) are
  ``frozenset`` values.
* :class:`Variable` — a named logic variable.
* :class:`Compound` — a constructor application.  Three families of
  functors are interpreted specially:

  - ``"."`` (cons) with two arguments builds list cells, as in the path
    argument ``[(r1, [W]) | L]`` of the extended counting method;
  - ``"tuple"`` builds fixed-width tuples, used for path entries;
  - the arithmetic functors ``"+"``, ``"-"`` and ``"*"`` build arithmetic
    expressions such as the ``I + 1`` index of the classical counting
    method.  Arithmetic terms are folded to constants once ground.

A fully ground compound term *normalizes* to a plain Python value (see
:func:`ground_value`), so relations only ever store hashable Python values
and tuple lookups stay cheap.
"""

from ..errors import EvaluationError

#: Functor of list cells.
CONS = "."
#: Functor of fixed-width tuple terms.
TUPLE = "tuple"
#: Arithmetic functors understood by :func:`eval_arith`.
ARITH_FUNCTORS = ("+", "-", "*", "//", "min", "max")

#: The empty list as a ground Python value.
NIL_VALUE = ()


class Term:
    """Abstract base class of all terms."""

    __slots__ = ()

    def is_ground(self):
        raise NotImplementedError

    def variables(self):
        """Return the set of variable names occurring in this term."""
        raise NotImplementedError

    def iter_variables(self):
        """Yield variable names in occurrence order (with repeats).

        Cheaper than :meth:`variables` for containment checks — no set
        is allocated per nesting level.
        """
        raise NotImplementedError


class Variable(Term):
    """A logic variable, identified by its name."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def is_ground(self):
        return False

    def variables(self):
        return {self.name}

    def iter_variables(self):
        yield self.name

    def __eq__(self, other):
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return "Variable(%r)" % self.name


class Constant(Term):
    """A ground value: string, int, tuple (list), or frozenset."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def is_ground(self):
        return True

    def variables(self):
        return set()

    def iter_variables(self):
        return iter(())

    def __eq__(self, other):
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return "Constant(%r)" % (self.value,)


class Compound(Term):
    """A constructor application ``functor(arg1, ..., argN)``."""

    __slots__ = ("functor", "args")

    def __init__(self, functor, args):
        self.functor = functor
        self.args = tuple(args)

    def is_ground(self):
        return all(arg.is_ground() for arg in self.args)

    def variables(self):
        names = set()
        for arg in self.args:
            names |= arg.variables()
        return names

    def iter_variables(self):
        for arg in self.args:
            yield from arg.iter_variables()

    def __eq__(self, other):
        return (
            isinstance(other, Compound)
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self):
        return hash(("compound", self.functor, self.args))

    def __repr__(self):
        return "Compound(%r, %r)" % (self.functor, self.args)


#: Term-level empty list, shared singleton.
NIL = Constant(NIL_VALUE)


def cons(head, tail):
    """Build the list cell ``[head | tail]``."""
    return Compound(CONS, (head, tail))


def make_list(items, tail=NIL):
    """Build a list term from ``items``, ending in ``tail``.

    With the default tail the result is a proper list; any term may be
    used as an open tail (e.g. a variable, for the ``[Entry | L]``
    patterns of the counting rewritings).
    """
    term = tail
    for item in reversed(list(items)):
        term = cons(item, term)
    return term


def make_tuple(items):
    """Build a fixed-width tuple term from ``items``."""
    return Compound(TUPLE, tuple(items))


def is_arith(term):
    """Return True if ``term`` is an arithmetic expression node."""
    return isinstance(term, Compound) and term.functor in ARITH_FUNCTORS


def eval_arith(functor, values):
    """Evaluate one arithmetic operator over ground numeric ``values``."""
    for value in values:
        if not isinstance(value, (int, float)):
            raise EvaluationError(
                "arithmetic on non-numeric value %r" % (value,)
            )
    if functor == "+":
        return values[0] + values[1]
    if functor == "-":
        return values[0] - values[1]
    if functor == "*":
        return values[0] * values[1]
    if functor == "//":
        return values[0] // values[1]
    if functor == "min":
        return min(values)
    if functor == "max":
        return max(values)
    raise EvaluationError("unknown arithmetic functor %r" % functor)


def ground_value(term):
    """Normalize a ground term to a plain Python value.

    Cons cells become Python tuples, tuple terms become tuples, and
    arithmetic expressions are folded.  Raises :class:`EvaluationError`
    if the term is not ground or a list has a non-list tail.
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        raise EvaluationError("term is not ground: variable %s" % term.name)
    if isinstance(term, Compound):
        if term.functor == CONS:
            head = ground_value(term.args[0])
            tail = ground_value(term.args[1])
            if not isinstance(tail, tuple):
                raise EvaluationError(
                    "list tail is not a list: %r" % (tail,)
                )
            return (head,) + tail
        if term.functor == TUPLE:
            return tuple(ground_value(arg) for arg in term.args)
        if term.functor in ARITH_FUNCTORS:
            return eval_arith(
                term.functor, [ground_value(arg) for arg in term.args]
            )
        raise EvaluationError("unknown functor %r" % term.functor)
    raise EvaluationError("not a term: %r" % (term,))


def from_value(value):
    """Wrap a plain Python value as a :class:`Constant`."""
    return Constant(value)
