"""Program transformations: unfolding and predicate renaming.

*Unfolding* replaces calls to a non-recursive derived predicate by the
bodies of its rules (one new rule per definition, variables renamed
apart).  It is the classical partial-evaluation step the paper's
canonical form implicitly assumes: a left part written through helper
predicates can be unfolded into base conjunctions before (or after)
the counting rewriting.  Used by callers who want, e.g., the support
predicates of a workload flattened away so the dedicated evaluators
see base relations only.

*Renaming* rewrites predicate names wholesale — handy when composing
programs from multiple sources with clashing names.

Both transformations preserve the minimal model of every remaining
predicate (tested against direct evaluation in
``tests/test_transform.py``).
"""

from ..errors import AnalysisError
from .analysis import ProgramAnalysis
from .atoms import Atom, Negation
from .rules import Program, Rule
from .unify import rename_apart, substitute, unify


def unfold_predicate(program, key):
    """Unfold every positive call to ``key`` in ``program``.

    ``key`` must name a non-recursive derived predicate that is not
    negated anywhere (unfolding under negation would need the full
    definition, not rule-by-rule replacement).  The predicate's own
    rules are dropped from the result.  Raises
    :class:`AnalysisError` when the preconditions fail.
    """
    analysis = ProgramAnalysis(program)
    clique = analysis.clique_of(key)
    if clique is None:
        raise AnalysisError(
            "%s/%d is not a derived predicate" % key
        )
    if clique.is_recursive():
        raise AnalysisError(
            "%s/%d is recursive; unfolding would not terminate" % key
        )
    for rule in program:
        for atom in rule.negated_atoms():
            if atom.key == key:
                raise AnalysisError(
                    "%s/%d appears negated; cannot unfold" % key
                )
    definitions = program.rules_for(key)
    if not definitions:
        raise AnalysisError("%s/%d has no rules" % key)

    out = []
    counter = [0]
    for rule in program:
        if rule.head.key == key:
            continue
        out.extend(_unfold_rule(rule, key, definitions, counter))
    return Program(out)


def _unfold_rule(rule, key, definitions, counter):
    """All unfoldings of one rule (cartesian over call occurrences)."""
    occurrence = None
    for index, lit in enumerate(rule.body):
        if isinstance(lit, Atom) and lit.key == key:
            occurrence = index
            break
    if occurrence is None:
        return [rule]
    call = rule.body[occurrence]
    results = []
    for definition in definitions:
        counter[0] += 1
        fresh = rename_apart(definition, "_u%d" % counter[0])
        subst = {}
        feasible = True
        for call_arg, def_arg in zip(call.args, fresh.head.args):
            subst = unify(call_arg, def_arg, subst)
            if subst is None:
                feasible = False
                break
        if not feasible:
            continue
        new_body = (
            tuple(_apply(lit, subst) for lit in rule.body[:occurrence])
            + tuple(_apply(lit, subst) for lit in fresh.body)
            + tuple(
                _apply(lit, subst)
                for lit in rule.body[occurrence + 1:]
            )
        )
        new_rule = Rule(_apply(rule.head, subst), new_body,
                        label=rule.label)
        # The rule may contain further occurrences of the predicate.
        results.extend(_unfold_rule(new_rule, key, definitions, counter))
    return results


def _apply(lit, subst):
    from .atoms import Comparison

    if isinstance(lit, Atom):
        return Atom(
            lit.pred, tuple(substitute(arg, subst) for arg in lit.args)
        )
    if isinstance(lit, Negation):
        return Negation(_apply(lit.atom, subst))
    if isinstance(lit, Comparison):
        return Comparison(
            lit.op,
            substitute(lit.left, subst),
            substitute(lit.right, subst),
        )
    raise AnalysisError("unknown literal %r" % (lit,))


def unfold_all_nonrecursive(program, keep=()):
    """Unfold every non-recursive derived predicate not in ``keep``.

    Predicates that appear negated are kept (see
    :func:`unfold_predicate`).  Iterates until nothing unfoldable
    remains; the result defines only the ``keep`` predicates and the
    recursive cliques.
    """
    keep = set(keep)
    while True:
        analysis = ProgramAnalysis(program)
        negated = set()
        for rule in program:
            for atom in rule.negated_atoms():
                negated.add(atom.key)
        candidates = [
            key
            for key in sorted(analysis.derived)
            if key not in keep
            and key not in negated
            and not analysis.clique_of(key).is_recursive()
            and _is_called(program, key)
        ]
        if not candidates:
            return program
        program = unfold_predicate(program, candidates[0])


def _is_called(program, key):
    for rule in program:
        if rule.head.key == key:
            continue
        for atom in rule.body_atoms():
            if atom.key == key:
                return True
    return False


def rename_predicates(program, mapping):
    """Rename predicates per ``{old_name: new_name}`` (all arities)."""

    def fix(atom):
        new_name = mapping.get(atom.pred, atom.pred)
        return Atom(new_name, atom.args)

    out = []
    for rule in program:
        body = []
        for lit in rule.body:
            if isinstance(lit, Atom):
                body.append(fix(lit))
            elif isinstance(lit, Negation):
                body.append(Negation(fix(lit.atom)))
            else:
                body.append(lit)
        out.append(Rule(fix(rule.head), tuple(body), label=rule.label))
    return Program(out)
