"""Append-only, epoch-stamped write-ahead log of EDB mutations.

One record per :meth:`~repro.engine.database.Database.add_facts` batch.
On-disk layout::

    header:  MAGIC (8 bytes)  lineage (24 ascii hex bytes)  '\\n'
    record:  <u32 payload_len> <u32 crc32(payload)> <payload>
    payload: <u64 seq> <pickle of (stamps, facts)>

``facts`` is the batch exactly as the ``add_facts`` caller gave it —
order and duplicates preserved, no per-fact re-encoding.  Replay feeds
it straight back through the engine, which reproduces deduplication
deterministically.

``stamps`` is the *whole* pre-batch epoch table —
``{(name, arity): epoch_before_the_batch}`` for every relation that
existed when the batch was logged (a relation the batch creates first
appears in the *next* record's stamps, implicitly starting at epoch 0).
Snapshotting the full table costs O(#relations) per record —
independent of batch size — so stamping adds *nothing per fact* to the
ingest hot path; that, plus logging the batch un-transformed, is what
keeps the logged path inside the <10 % overhead budget the S5 benchmark
enforces.  Recovery verifies stamps inductively — record *k* applies
only when the recovering database sits at exactly the epochs record *k*
was stamped with — which transitively proves the final epoch table
matches the log head.

All integers are little-endian.  The file is opened unbuffered
(``buffering=0``), so a simulated crash (:class:`~repro.engine.faults.
SimulatedCrash`) leaves on disk exactly the bytes the plan allowed
through — no Python-level buffer to leak extra data past the "death".

Fsync policy:

* ``"always"`` — fsync after every record; a record returned from
  :meth:`~WriteAheadLog.append` is on the platter.
* ``"batch"`` — fsync only on :meth:`~WriteAheadLog.flush` / ``close``
  (and the checkpointing path calls ``flush`` before cutting a
  checkpoint).  A crash may lose the records since the last flush but
  never corrupts the prefix.
* ``"off"`` — never fsync (tests, throwaway runs).

Torn-tail handling: :class:`WalReader` stops at the first record whose
length field runs past end-of-file or whose CRC fails, reports the
clean prefix, and :meth:`WriteAheadLog.open` truncates the file back
to that prefix before appending — a torn tail costs the torn records,
never the log.
"""

import os
import pickle
import struct
import time
import zlib

from ..engine import faults
from ..errors import WalError

#: File magic: identifies WAL files and versions the record format.
MAGIC = b"REPROWL1"

_HEAD = struct.Struct("<II")   # payload_len, crc32(payload)
_SEQ = struct.Struct("<Q")     # record sequence number

#: Header length: magic + 24 hex chars of lineage + newline.
_HEADER_LEN = len(MAGIC) + 24 + 1


class WalRecord:
    """One decoded WAL record: an ``add_facts`` batch and its stamps."""

    __slots__ = ("seq", "stamps", "facts")

    def __init__(self, seq, stamps, facts):
        #: 1-based position in the log (dense; replay enforces it).
        self.seq = seq
        #: ``{(name, arity): pre-batch epoch}`` — the whole table.
        self.stamps = stamps
        #: The batch exactly as given: ``(name, values)`` pairs.
        self.facts = facts

    def __repr__(self):
        return "WalRecord(seq=%d, %d fact(s), %d relation(s))" % (
            self.seq, len(self.facts), len(self.stamps)
        )


def _encode_record(seq, stamps, facts):
    payload = _SEQ.pack(seq) + pickle.dumps(
        (stamps, facts), protocol=pickle.HIGHEST_PROTOCOL
    )
    return _HEAD.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(seq_expected, payload):
    (seq,) = _SEQ.unpack_from(payload)
    stamps, facts = pickle.loads(payload[_SEQ.size:])
    return WalRecord(seq, stamps, facts), seq == seq_expected


class WalReader:
    """Scan a WAL file, yielding the longest clean prefix of records.

    Never raises for tail damage — a short header, torn record, or CRC
    mismatch ends the scan and is described in :attr:`tail_error`;
    :attr:`valid_bytes` is the offset the clean prefix ends at (what
    :meth:`WriteAheadLog.open` truncates back to).  Only structural
    impossibilities (wrong magic, a *mid-log* sequence gap, which no
    crash can produce) raise :class:`~repro.errors.WalError`.
    """

    def __init__(self, path):
        self.path = path
        self.lineage = None
        self.records = []
        self.valid_bytes = 0
        self.tail_error = None
        self._scan()

    def _scan(self):
        with open(self.path, "rb") as handle:
            data = handle.read()
        if len(data) < _HEADER_LEN:
            # A header torn mid-write: treat as an empty, reusable log.
            self.tail_error = "short header (%d bytes)" % len(data)
            return
        if data[: len(MAGIC)] != MAGIC:
            raise WalError(
                "%s: not a WAL file (bad magic %r)"
                % (self.path, data[: len(MAGIC)])
            )
        lineage = data[len(MAGIC): len(MAGIC) + 24]
        if data[_HEADER_LEN - 1: _HEADER_LEN] != b"\n":
            self.tail_error = "short header (unterminated lineage)"
            return
        try:
            self.lineage = lineage.decode("ascii")
        except UnicodeDecodeError:
            raise WalError("%s: undecodable lineage in header" % self.path)
        offset = _HEADER_LEN
        self.valid_bytes = offset
        seq = 0
        n = len(data)
        while offset < n:
            if offset + _HEAD.size > n:
                self.tail_error = "torn record head at byte %d" % offset
                return
            length, crc = _HEAD.unpack_from(data, offset)
            start = offset + _HEAD.size
            end = start + length
            if end > n:
                self.tail_error = (
                    "torn record %d (%d of %d payload bytes)"
                    % (seq + 1, n - start, length)
                )
                return
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                self.tail_error = "checksum mismatch at record %d" % (
                    seq + 1
                )
                return
            try:
                record, seq_ok = _decode_payload(seq + 1, payload)
            except Exception as exc:
                self.tail_error = "undecodable record %d: %s" % (
                    seq + 1, exc
                )
                return
            if not seq_ok:
                raise WalError(
                    "%s: sequence gap at record %d (file says %d)"
                    % (self.path, seq + 1, record.seq)
                )
            seq += 1
            self.records.append(record)
            offset = end
            self.valid_bytes = offset

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)


class WriteAheadLog:
    """The writable log.  Create via :meth:`create` or :meth:`open`.

    Not internally locked: :class:`~repro.durability.durable.
    DurableDatabase` calls :meth:`append` under the database mutation
    lock, which is exactly what makes WAL order equal epoch order.
    """

    def __init__(self, path, handle, lineage, seq, fsync="batch"):
        if fsync not in ("always", "batch", "off"):
            raise WalError("unknown fsync policy %r" % (fsync,))
        self.path = path
        self.lineage = lineage
        self.fsync = fsync
        self._handle = handle
        self._seq = seq
        self._dirty = False
        self._failed = None
        #: Cumulative cost of the log itself: ``appends`` / ``bytes``
        #: written, ``fsyncs`` issued, and ``append_seconds`` spent
        #: inside :meth:`append` (encode + write + policy fsync).  The
        #: S5 benchmark divides ``append_seconds`` by the rest of the
        #: ingest time to assert the <10 % overhead claim without the
        #: run-to-run noise of comparing two separate ingests.
        self.stats = {
            "appends": 0, "bytes": 0, "fsyncs": 0,
            "append_seconds": 0.0,
        }

    @classmethod
    def create(cls, path, lineage, fsync="batch"):
        """Start a fresh log (the file must not exist)."""
        if len(lineage) != 24:
            raise WalError(
                "lineage must be 24 hex chars, got %r" % (lineage,)
            )
        handle = open(path, "xb", buffering=0)
        handle.write(MAGIC + lineage.encode("ascii") + b"\n")
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, lineage, seq=0, fsync=fsync)

    @classmethod
    def open(cls, path, fsync="batch"):
        """Reopen an existing log for appending.

        Scans the file first; a torn tail is truncated away (the
        default posture after a crash — the torn record never reached
        durability, so dropping it is the *correct* reading of the
        file).  Returns ``(wal, reader)`` so the caller can replay the
        surviving records.
        """
        reader = WalReader(path)
        if reader.lineage is None:
            # Header never finished: re-create in place.
            os.remove(path)
            wal = cls.create(
                path, lineage=os.urandom(12).hex(), fsync=fsync
            )
            return wal, reader
        handle = open(path, "r+b", buffering=0)
        if reader.tail_error is not None:
            handle.truncate(reader.valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        handle.seek(reader.valid_bytes)
        wal = cls(
            path, handle, reader.lineage, seq=len(reader.records),
            fsync=fsync,
        )
        return wal, reader

    @property
    def seq(self):
        """Sequence number of the last durable-or-pending record."""
        return self._seq

    def append(self, facts, stamps):
        """Log one batch; returns the record's sequence number.

        Must be called *before* the batch is applied to the database
        (write-ahead), with ``stamps`` — the pre-batch epoch table —
        read under the same lock hold.
        """
        if self._failed is not None:
            raise WalError(
                "WAL is failed (%s); reopen to recover" % self._failed
            )
        started = time.perf_counter()
        seq = self._seq + 1
        encoded = _encode_record(seq, stamps, facts)
        damage = faults.wal_event("append", len(encoded))
        if damage is not None:
            self._apply_damage(damage, encoded)
        self._handle.write(encoded)
        self._seq = seq
        if self.fsync == "always":
            self._fsync_now()
        else:
            self._dirty = True
        stats = self.stats
        stats["appends"] += 1
        stats["bytes"] += len(encoded)
        stats["append_seconds"] += time.perf_counter() - started
        return seq

    def _apply_damage(self, damage, encoded):
        """Apply an injected crash plan's instruction, then "die"."""
        kind = damage[0]
        if kind == "torn":
            self._handle.write(encoded[: damage[1]])
        elif kind == "corrupt":
            offset = _HEAD.size + (damage[1] % max(len(encoded) - _HEAD.size, 1))
            corrupted = (
                encoded[:offset]
                + bytes((encoded[offset] ^ 0xFF,))
                + encoded[offset + 1:]
            )
            self._handle.write(corrupted)
        elif kind != "crash":
            raise WalError("unknown damage instruction %r" % (damage,))
        # "crash": the record was never written at all for append
        # events; for fsync events the handling lives in _fsync_now.
        self._die("injected crash during append")

    def _fsync_now(self):
        damage = faults.wal_event("fsync")
        if damage is not None:
            # Record bytes are in the file; the fsync never happened.
            self._die("injected crash before fsync")
        os.fsync(self._handle.fileno())
        self.stats["fsyncs"] += 1
        self._dirty = False

    def _die(self, reason):
        self._failed = reason
        try:
            self._handle.close()
        except OSError:
            pass
        raise faults.SimulatedCrash(reason)

    def flush(self):
        """Make every appended record durable (fsync unless ``off``)."""
        if self._failed is not None:
            raise WalError(
                "WAL is failed (%s); reopen to recover" % self._failed
            )
        if self._dirty and self.fsync != "off":
            self._fsync_now()
        self._dirty = False

    def close(self):
        if self._failed is not None or self._handle.closed:
            return
        if self._dirty and self.fsync != "off":
            os.fsync(self._handle.fileno())
            self._dirty = False
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def dump(self):
        """Human-readable text rendering of the log (for debugging).

        Facts are rendered with the same :func:`~repro.datalog.pretty.
        format_value` syntax ``Database.to_text`` uses, so the dump of
        a full log is a valid fact program.
        """
        from ..datalog.pretty import format_value

        reader = WalReader(self.path)
        lines = ["%% wal %s lineage=%s" % (self.path, reader.lineage)]
        for record in reader:
            stamps = ", ".join(
                "%s/%d@%d" % (name, arity, epoch)
                for (name, arity), epoch in sorted(record.stamps.items())
            )
            lines.append("%% record %d: %s" % (record.seq, stamps))
            for name, values in record.facts:
                lines.append(
                    "%s(%s)."
                    % (name, ", ".join(format_value(v) for v in values))
                )
        if reader.tail_error is not None:
            lines.append("%% tail: %s" % reader.tail_error)
        return "\n".join(lines)

    def __repr__(self):
        state = self._failed or ("open" if not self._handle.closed
                                 else "closed")
        return "WriteAheadLog(%s, seq=%d, fsync=%s, %s)" % (
            self.path, self._seq, self.fsync, state
        )
