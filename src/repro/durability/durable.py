"""A :class:`~repro.engine.database.Database` that survives ``kill -9``.

:class:`DurableDatabase` binds a database to a durability directory::

    <dir>/wal.log            the write-ahead log (one generation)
    <dir>/ckpt-<seq>.bin     checkpoints, named by WAL sequence

Every mutator appends to the WAL *before* publishing to memory, under
the database's existing mutation lock — the lock that already makes
``add_facts`` batches atomic is exactly what makes WAL order equal
epoch order, so no second ordering mechanism exists to disagree with
the first.  Construction *is* recovery: opening a directory loads the
newest valid checkpoint, replays the WAL suffix (verifying each
record's pre-batch epoch stamps, which transitively proves the final
epoch table matches the log head), truncates any torn tail, and
resumes appending.  The recovered database keeps the lineage token the
dead process wrote into the log header, so cross-process answer-cache
entries keyed on (lineage, epochs) remain valid.

Crash semantics of one ``add_facts`` call:

* crash before the record is durable → the batch is gone *entirely*
  after recovery (memory was never mutated either — the WAL raises
  before the in-memory apply);
* crash after → the batch is replayed *entirely*.

There is no half-batch state, mirroring the atomicity the in-memory
lock already gave concurrent readers.
"""

import os

from ..engine.database import Database
from ..errors import RecoveryError
from .checkpoint import CheckpointStore
from .wal import WriteAheadLog

#: The single WAL file of a durability directory.
WAL_NAME = "wal.log"


class RecoveryReport:
    """What recovery found and did; attached as ``db.recovery``."""

    __slots__ = (
        "directory", "lineage", "fresh", "checkpoint_path",
        "checkpoint_seq", "wal_records", "replayed", "truncated_tail",
        "skipped_checkpoints", "epochs",
    )

    def __init__(self, directory, lineage, fresh=False,
                 checkpoint_path=None, checkpoint_seq=0, wal_records=0,
                 replayed=0, truncated_tail=None,
                 skipped_checkpoints=(), epochs=None):
        self.directory = directory
        self.lineage = lineage
        #: True when the directory held no prior state.
        self.fresh = fresh
        self.checkpoint_path = checkpoint_path
        #: WAL sequence the loaded checkpoint covered (0 = none).
        self.checkpoint_seq = checkpoint_seq
        #: Records surviving in the log (the log head is this many).
        self.wal_records = wal_records
        #: Records applied on top of the checkpoint.
        self.replayed = replayed
        #: Description of a truncated torn tail, or ``None``.
        self.truncated_tail = truncated_tail
        #: ``(path, reason)`` for checkpoints passed over.
        self.skipped_checkpoints = list(skipped_checkpoints)
        #: The recovered epoch table ``{(name, arity): epoch}``.
        self.epochs = dict(epochs or {})

    def to_dict(self):
        """JSON-ready rendering (the CLI ``recover`` subcommand)."""
        return {
            "directory": self.directory,
            "lineage": self.lineage,
            "fresh": self.fresh,
            "checkpoint": self.checkpoint_path,
            "checkpoint_seq": self.checkpoint_seq,
            "wal_records": self.wal_records,
            "replayed": self.replayed,
            "truncated_tail": self.truncated_tail,
            "skipped_checkpoints": self.skipped_checkpoints,
            "epochs": {
                "%s/%d" % key: epoch
                for key, epoch in sorted(self.epochs.items())
            },
        }

    def __repr__(self):
        return (
            "RecoveryReport(%s, %d record(s), checkpoint@%d, "
            "replayed %d%s)"
            % (
                self.directory, self.wal_records, self.checkpoint_seq,
                self.replayed,
                ", torn tail" if self.truncated_tail else "",
            )
        )


class DurableDatabase(Database):
    """A database whose mutations are crash-consistent.

    Parameters
    ----------
    directory : str
        The durability directory (created if missing).  Opening a
        directory with prior state performs full recovery.
    fsync : ``"always"`` / ``"batch"`` / ``"off"``
        WAL fsync policy (see :mod:`repro.durability.wal`).
    checkpoint_keep : int
        Checkpoint files retained by :meth:`checkpoint`.
    """

    def __init__(self, directory, fsync="batch", checkpoint_keep=2):
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._checkpoints = CheckpointStore(directory, keep=checkpoint_keep)
        self._wal = None
        self.recovery = self._recover(fsync)

    # -- recovery ----------------------------------------------------

    def _recover(self, fsync):
        wal_path = os.path.join(self.directory, WAL_NAME)
        if not os.path.exists(wal_path):
            if self._checkpoints.paths():
                raise RecoveryError(
                    "%s: checkpoint files present but %s is missing — "
                    "refusing to guess which suffix of history was lost"
                    % (self.directory, WAL_NAME)
                )
            self._wal = WriteAheadLog.create(
                wal_path, self.lineage, fsync=fsync
            )
            return RecoveryReport(
                self.directory, self.lineage, fresh=True
            )
        wal, reader = WriteAheadLog.open(wal_path, fsync=fsync)
        if reader.lineage is None:
            # The header itself was torn: the log never held a durable
            # record, so prior checkpoints (if any) describe a history
            # this file cannot confirm.
            if self._checkpoints.paths():
                wal.close()
                raise RecoveryError(
                    "%s: WAL header is torn but checkpoints exist"
                    % self.directory
                )
            self._wal = wal
            self.lineage = wal.lineage
            return RecoveryReport(
                self.directory, self.lineage, fresh=True,
                truncated_tail=reader.tail_error,
            )
        self._wal = wal
        self.lineage = wal.lineage
        checkpoint, skipped = self._checkpoints.load_newest(
            lineage=wal.lineage, max_seq=len(reader.records)
        )
        base_seq = 0
        checkpoint_path = None
        if checkpoint is not None:
            checkpoint.restore(self)
            base_seq = checkpoint.wal_seq
            checkpoint_path = checkpoint.path
        replayed = 0
        for record in reader.records[base_seq:]:
            for key, epoch in sorted(record.stamps.items()):
                actual = self.epoch_of(key)
                if actual != epoch:
                    raise RecoveryError(
                        "%s: record %d stamped %s/%d at epoch %d, "
                        "database is at %d — on-disk files describe "
                        "two different histories"
                        % (self.directory, record.seq, key[0], key[1],
                           epoch, actual)
                    )
            Database.add_facts(self, record.facts)
            replayed += 1
        return RecoveryReport(
            self.directory, self.lineage,
            checkpoint_path=checkpoint_path, checkpoint_seq=base_seq,
            wal_records=len(reader.records), replayed=replayed,
            truncated_tail=reader.tail_error,
            skipped_checkpoints=skipped,
            epochs={key: self.epoch_of(key) for key in self.keys()},
        )

    # -- durable mutators --------------------------------------------

    def add_facts(self, facts):
        """Log, then apply, one atomic batch (write-ahead).

        The stamps are read and the record appended under the same
        lock hold that applies the batch, so the log's record order is
        the epoch order every snapshot observes.
        """
        if not isinstance(facts, list):
            facts = list(facts)
        with self._lock:
            # The record carries the batch exactly as given plus a
            # snapshot of the whole epoch table — O(#relations), never
            # O(#facts).  The logged path therefore does no per-fact
            # work the unlogged path doesn't (the S5 benchmark holds
            # the overhead under 10 %), and recovery still verifies
            # every stamped relation before applying the record.
            stamps = {
                key: rel.epoch for key, rel in self._relations.items()
            }
            self._wal.append(facts, stamps)
            Database.add_facts(self, facts)

    def add_fact(self, name, *values):
        self.add_facts([(name, values)])

    # -- durability controls -----------------------------------------

    @property
    def wal_seq(self):
        """Sequence number of the last logged batch."""
        return self._wal.seq

    @property
    def wal_stats(self):
        """A copy of the log's cost counters (appends, bytes, fsyncs,
        append_seconds) — what the S5 benchmark and the smoke probe
        report as the price of durability."""
        return dict(self._wal.stats)

    def flush(self):
        """Make every logged batch durable (a ``batch``-policy fsync)."""
        self._wal.flush()

    def checkpoint(self):
        """Cut a checkpoint of the current state; returns its path.

        The WAL is flushed and the state pinned under one lock hold
        (an epoch snapshot — O(#relations)), then serialized and
        written outside the lock, so ingest stalls only for the pin,
        not for the file write.
        """
        with self._lock:
            self._wal.flush()
            seq = self._wal.seq
            pinned = self.snapshot()
        return self._checkpoints.write(pinned, seq, lineage=self.lineage)

    def checkpoints(self):
        """Existing checkpoint paths, newest first."""
        return self._checkpoints.paths()

    def close(self):
        """Flush and close the WAL; the database stays readable."""
        if self._wal is not None:
            self._wal.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        inner = ", ".join(
            "%s/%d:%d" % (k[0], k[1], len(rel))
            for k, rel in sorted(self._relations.items())
        )
        return "DurableDatabase(%s, seq=%d%s%s)" % (
            self.directory, 0 if self._wal is None else self._wal.seq,
            ", " if inner else "", inner,
        )


def recover(directory, fsync="batch", checkpoint_keep=2):
    """Open ``directory`` and return ``(db, report)``.

    Construction of :class:`DurableDatabase` *is* recovery; this
    wrapper just returns the report beside the database for callers
    (the CLI ``recover`` subcommand, the crash drill) that want to
    inspect what was replayed.
    """
    db = DurableDatabase(
        directory, fsync=fsync, checkpoint_keep=checkpoint_keep
    )
    return db, db.recovery
