"""Atomic database checkpoints over the columnar byte fast path.

A checkpoint is one self-verifying file::

    MAGIC (8 bytes)  <u32 crc32(body)>  body
    body:   frame*            (frame = <u64 len> <bytes>)
    frames: [0] meta pickle   {wal_seq, lineage, epochs, relations, ...}
            [1] values pickle (the intern pool's dense id->value table)
            [2:] one ColumnStore.to_bytes blob per relation, in
                 meta["relations"] order

Rows are stored as intern-pool *ids* in insertion-log order
(:meth:`~repro.engine.columnar.ColumnStore.to_bytes` — raw machine
words, no per-row framing), with the pool's value table pickled once
beside them.  Restoring replays the value table into a fresh pool (ids
are dense and first-seen ordered, so replay reassigns identical ids)
and decodes each relation's rows back through it; because the blobs
preserve insertion order, the restored relations end at exactly the
epochs the checkpoint recorded, which :func:`read_checkpoint` verifies.

Writing is atomic: the file is assembled in a ``.tmp`` sibling, fsynced,
``os.replace``d over the final name, and the directory entry fsynced —
a crash leaves either the old checkpoint set or the new one, never a
half-written file under the real name.  Corruption is a *soft* failure
(:class:`~repro.errors.CheckpointError`): recovery skips the bad file
and falls back to an older checkpoint plus a longer WAL replay.
"""

import os
import pickle
import struct
import zlib

from ..engine.columnar import ColumnStore
from ..engine.interning import InternPool
from ..errors import CheckpointError

#: File magic: identifies checkpoint files and versions the layout.
MAGIC = b"REPROCK1"

_CRC = struct.Struct("<I")
_FRAME = struct.Struct("<Q")


def _column_blob(rel, pool):
    """Id-encode one relation's insertion log as a ColumnStore blob.

    Columnar-backend relations already hold the id mirror; the rows
    backend encodes on the fly (assigning pool ids on first use —
    that's why the value table is pickled *after* the blobs).
    """
    # Epoch-pinned snapshot relations wrap the real relation; unwrap.
    frozen = getattr(rel, "_rel", None)
    if frozen is not None:
        rel = frozen()
    ids = rel._ids
    if ids is not None and len(ids) == len(rel._log):
        return rel._ids.to_bytes()
    store = ColumnStore(rel.arity)
    ident_row = pool.ident_row
    for row in rel._log:
        store.append(ident_row(row))
    return store.to_bytes()


def write_checkpoint(path, db, wal_seq, lineage=None):
    """Atomically write a checkpoint of ``db`` to ``path``.

    ``wal_seq`` names the WAL record the state corresponds to (every
    record up to and including it is reflected, nothing later) — the
    caller is responsible for reading it under the same lock hold (or
    from the same snapshot) as the database state.  Returns ``path``.
    """
    if lineage is None:
        lineage = db.lineage
    pool = db.intern_pool
    keys = sorted(db._relations)
    blobs = [_column_blob(db._relations[key], pool) for key in keys]
    meta = {
        "wal_seq": wal_seq,
        "lineage": lineage,
        "relations": keys,
        "epochs": {key: db.epoch_of(key) for key in keys},
    }
    # Pickled after the blobs: rows-backend encoding above may have
    # assigned fresh ids, and every id referenced by a blob must
    # resolve.  (The pool is append-only, so a concurrent ingester can
    # only add values the blobs never reference — harmless.)
    values = list(pool._values)
    frames = [
        pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
        pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL),
    ]
    frames.extend(blobs)
    body = b"".join(
        _FRAME.pack(len(frame)) + frame for frame in frames
    )
    data = MAGIC + _CRC.pack(zlib.crc32(body)) + body
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")
    return path


def _fsync_dir(directory):
    """Make a rename durable by fsyncing the directory entry."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Checkpoint:
    """A decoded, CRC-verified checkpoint ready to restore."""

    __slots__ = ("path", "meta", "_values", "_blobs")

    def __init__(self, path, meta, values, blobs):
        self.path = path
        self.meta = meta
        self._values = values
        self._blobs = blobs

    @property
    def wal_seq(self):
        return self.meta["wal_seq"]

    @property
    def lineage(self):
        return self.meta["lineage"]

    @property
    def epochs(self):
        return self.meta["epochs"]

    def restore(self, db):
        """Populate the *empty* database ``db`` with this checkpoint.

        Replaces ``db.intern_pool`` (replaying the value table
        reassigns the identical dense ids) and rebuilds every relation
        in insertion-log order, then verifies the resulting epoch table
        against the recorded one.  Mutating a non-empty database is a
        caller bug and raises :class:`ValueError`.
        """
        if db._relations:
            raise ValueError(
                "Checkpoint.restore needs an empty database, got %r"
                % (db,)
            )
        pool = InternPool()
        for value in self._values:
            pool.ident(value)
        db.intern_pool = pool
        for key, blob in zip(self.meta["relations"], self._blobs):
            try:
                store = ColumnStore.from_bytes(blob)
            except ValueError as exc:
                raise CheckpointError(
                    "%s: bad column blob for %s/%d: %s"
                    % (self.path, key[0], key[1], exc)
                )
            rel = db.relation(key[0], key[1])
            decode_row = pool.decode_row
            add = rel.add
            try:
                for ordinal in range(len(store)):
                    add(decode_row(store.row(ordinal)))
            except IndexError:
                raise CheckpointError(
                    "%s: %s/%d references ids outside the value table"
                    % (self.path, key[0], key[1])
                )
            recorded = self.meta["epochs"][key]
            if rel.epoch != recorded:
                raise CheckpointError(
                    "%s: %s/%d restored to epoch %d, recorded %d"
                    % (self.path, key[0], key[1], rel.epoch, recorded)
                )
        db.lineage = self.lineage
        return db

    def __repr__(self):
        return "Checkpoint(%s, wal_seq=%d, %d relation(s))" % (
            self.path, self.wal_seq, len(self.meta["relations"])
        )


def read_checkpoint(path):
    """Read and verify one checkpoint file; returns a :class:`Checkpoint`.

    Every structural problem — short file, bad magic, CRC mismatch,
    undecodable pickle, frame/relation count disagreement — raises
    :class:`~repro.errors.CheckpointError`, which recovery treats as
    "skip this file and fall back".
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError("%s: unreadable: %s" % (path, exc))
    prefix = len(MAGIC) + _CRC.size
    if len(data) < prefix:
        raise CheckpointError("%s: short file (%d bytes)" % (path, len(data)))
    if data[: len(MAGIC)] != MAGIC:
        raise CheckpointError(
            "%s: bad magic %r" % (path, data[: len(MAGIC)])
        )
    (crc,) = _CRC.unpack_from(data, len(MAGIC))
    body = data[prefix:]
    if zlib.crc32(body) != crc:
        raise CheckpointError("%s: checksum mismatch" % path)
    frames = []
    offset = 0
    n = len(body)
    while offset < n:
        if offset + _FRAME.size > n:
            raise CheckpointError("%s: torn frame header" % path)
        (length,) = _FRAME.unpack_from(body, offset)
        start = offset + _FRAME.size
        if start + length > n:
            raise CheckpointError("%s: torn frame body" % path)
        frames.append(body[start:start + length])
        offset = start + length
    if len(frames) < 2:
        raise CheckpointError(
            "%s: expected meta and value frames, got %d"
            % (path, len(frames))
        )
    try:
        meta = pickle.loads(frames[0])
        values = pickle.loads(frames[1])
    except Exception as exc:
        raise CheckpointError("%s: undecodable pickle: %s" % (path, exc))
    if (
        not isinstance(meta, dict)
        or "wal_seq" not in meta
        or "lineage" not in meta
        or "relations" not in meta
        or "epochs" not in meta
    ):
        raise CheckpointError("%s: malformed meta frame" % path)
    if len(frames) - 2 != len(meta["relations"]):
        raise CheckpointError(
            "%s: %d relation blob(s) for %d relation(s)"
            % (path, len(frames) - 2, len(meta["relations"]))
        )
    return Checkpoint(path, meta, values, frames[2:])


class CheckpointStore:
    """Manage the checkpoint files of one durability directory.

    Files are named ``ckpt-<wal_seq>.bin``; the newest valid one (by
    WAL sequence) wins at recovery.  :meth:`write` retains the
    ``keep`` most recent files so a corrupt newest checkpoint always
    has a fallback.
    """

    def __init__(self, directory, keep=2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = directory
        self.keep = keep

    def _path_for(self, wal_seq):
        return os.path.join(self.directory, "ckpt-%012d.bin" % wal_seq)

    def paths(self):
        """Checkpoint paths, newest (highest WAL sequence) first."""
        entries = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt-") and name.endswith(".bin"):
                try:
                    seq = int(name[5:-4])
                except ValueError:
                    continue
                entries.append((seq, os.path.join(self.directory, name)))
        entries.sort(reverse=True)
        return [path for _, path in entries]

    def write(self, db, wal_seq, lineage=None):
        """Checkpoint ``db`` at ``wal_seq`` and prune old files."""
        path = write_checkpoint(
            self._path_for(wal_seq), db, wal_seq, lineage
        )
        for stale in self.paths()[self.keep:]:
            try:
                os.remove(stale)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path

    def load_newest(self, lineage=None, max_seq=None):
        """The newest usable checkpoint, or ``None``.

        Skips files that fail verification (:class:`~repro.errors.
        CheckpointError`), belong to a different ``lineage``, or claim
        a WAL sequence beyond ``max_seq`` (a checkpoint "from the
        future" relative to the surviving log cannot be trusted).
        Returns ``(checkpoint_or_None, skipped)`` where ``skipped``
        lists ``(path, reason)`` pairs for the files passed over.
        """
        skipped = []
        for path in self.paths():
            try:
                checkpoint = read_checkpoint(path)
            except CheckpointError as exc:
                skipped.append((path, str(exc)))
                continue
            if lineage is not None and checkpoint.lineage != lineage:
                skipped.append(
                    (path, "lineage %s does not match log %s"
                     % (checkpoint.lineage, lineage))
                )
                continue
            if max_seq is not None and checkpoint.wal_seq > max_seq:
                skipped.append(
                    (path, "wal_seq %d beyond surviving log (%d)"
                     % (checkpoint.wal_seq, max_seq))
                )
                continue
            return checkpoint, skipped
        return None, skipped

    def __repr__(self):
        return "CheckpointStore(%s, keep=%d, %d file(s))" % (
            self.directory, self.keep, len(self.paths())
        )
