"""The kill -9 drill: crash a serving process mid-burst, recover, verify.

``python -m repro.durability.crashdrill [DIR]`` runs two processes:

* the **child** (``--child``) opens a :class:`~repro.durability.durable.
  DurableDatabase` (``fsync="always"``) in the drill directory and
  loops: ingest one fact batch (a new tree of the same-generation
  workload), serve a burst of queries for recent roots through a
  :class:`~repro.serve.service.QueryService` with a write-through
  audit log, then print ``BATCH k`` — the marker that batch *k* and
  its burst are durable and audited;
* the **parent** spawns the child, waits for the ``--kill-after``-th
  marker, sends ``SIGKILL`` (a real, unhandleable kill — nothing in
  the child can flush or atexit its way out), then:

  1. recovers the directory (:func:`~repro.durability.durable.recover`);
  2. builds an **uncrashed control** database by replaying the WAL's
     surviving records into a plain in-memory
     :class:`~repro.engine.database.Database` — the state a process
     that stopped cleanly after the same batches would hold;
  3. asserts the recovered epoch table equals the control's (the WAL
     head), the recovered ``to_text()`` is byte-identical to the
     control's, and re-running every root query yields byte-identical
     rendered answers on both;
  4. replay-checks the audit log against the recovered state
     (:func:`~repro.durability.audit.verify_audit`) — zero mismatches.

Exit code 0 on success.  The drill inherits ``REPRO_COLUMNAR`` from
the environment, so CI runs it under both storage backends.
"""

import argparse
import os
import signal
import subprocess
import sys

QUERY_TEXT = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
?- sg(r0, Y).
"""

AUDIT_NAME = "audit.jsonl"

#: Fanout of each ingested tree (leaves per root).
FANOUT = 3


def tree_batch(k):
    """The facts of tree ``k``: root -> mids -> leaves, one batch."""
    facts = []
    root = "r%d" % k
    for j in range(FANOUT):
        mid = "m%d_%d" % (k, j)
        twin = "t%d_%d" % (k, j)
        leaf = "l%d_%d" % (k, j)
        facts.append(("up", (root, mid)))
        facts.append(("flat", (mid, twin)))
        facts.append(("down", (twin, leaf)))
    return facts


def expected_roots(db):
    """Roots present in ``db``, in ingestion order."""
    k = 0
    roots = []
    while ("up", 2) in db and ("r%d" % k, "m%d_0" % k) in db.get(("up", 2)):
        roots.append("r%d" % k)
        k += 1
    return roots


def _prepared(db):
    from ..datalog.parser import parse_query
    from ..exec.cache import AnswerCache
    from ..exec.prepared import PreparedQuery

    return PreparedQuery(
        parse_query(QUERY_TEXT), db, cache=AnswerCache(capacity=256)
    )


def child_main(directory, batches):
    """Ingest/serve until killed (or ``batches`` run out)."""
    from ..serve.service import QueryService
    from .audit import AuditLog
    from .durable import DurableDatabase

    db = DurableDatabase(directory, fsync="always")
    prepared = _prepared(db)
    audit = AuditLog(
        os.path.join(directory, AUDIT_NAME), flush_every=1
    )
    service = QueryService(
        prepared, db, workers=2, queue_capacity=32, audit=audit
    )
    for k in range(batches):
        db.add_facts(tree_batch(k))
        # Burst: query the most recent roots against the new state.
        futures = [
            service.submit(("r%d" % root,))
            for root in range(max(0, k - 3), k + 1)
        ]
        for future in futures:
            future.result(timeout=60.0)
        if k % 3 == 2:
            # Periodic checkpoints so the parent's recovery exercises
            # checkpoint-plus-WAL-suffix, not just a full replay.
            db.checkpoint()
        print("BATCH %d" % k, flush=True)
    service.drain()
    audit.close()
    db.close()
    return 0


def _render(prepared, db, roots):
    """Canonical text of every root's answer set (the comparison key)."""
    lines = []
    for root in roots:
        result = prepared.run((root,), db=db)
        lines.append(
            "%s -> %s"
            % (root, ", ".join(sorted(repr(a) for a in result.answers)))
        )
    return "\n".join(lines)


def parent_main(directory, kill_after, batches, out=sys.stdout):
    from ..engine.database import Database
    from .audit import verify_audit
    from .durable import WAL_NAME, recover
    from .wal import WalReader

    os.makedirs(directory, exist_ok=True)
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.durability.crashdrill",
         "--child", directory, "--batches", str(batches)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=dict(os.environ),
    )
    seen = 0
    for line in child.stdout:
        if line.startswith("BATCH "):
            seen += 1
            if seen >= kill_after:
                break
    if seen < kill_after:
        child.wait()
        out.write("FAIL: child exited after %d batch(es): rc=%s\n"
                  % (seen, child.returncode))
        return 1
    # A real kill -9: no Python-level cleanup runs in the child.
    os.kill(child.pid, signal.SIGKILL)
    child.stdout.read()
    child.wait()

    db, report = recover(directory, fsync="off")
    failures = []

    # Control: replay the surviving WAL into a plain in-memory
    # database — the uncrashed-equivalent state.
    control = Database()
    reader = WalReader(os.path.join(directory, WAL_NAME))
    for record in reader:
        control.add_facts(record.facts)
    control_epochs = {key: control.epoch_of(key) for key in control.keys()}
    recovered_epochs = {key: db.epoch_of(key) for key in db.keys()}
    if recovered_epochs != control_epochs:
        failures.append(
            "epoch table != WAL head: %r vs %r"
            % (recovered_epochs, control_epochs)
        )
    if db.to_text() != control.to_text():
        failures.append("recovered facts differ from WAL replay")

    roots = expected_roots(control)
    if len(roots) < kill_after:
        failures.append(
            "only %d root(s) survived, expected >= %d (fsync=always "
            "batches printed as durable)" % (len(roots), kill_after)
        )
    recovered_answers = _render(_prepared(db), db, roots)
    control_answers = _render(_prepared(control), control, roots)
    if recovered_answers != control_answers:
        failures.append("rendered answers differ from uncrashed control")

    audit_report = verify_audit(
        os.path.join(directory, AUDIT_NAME), _prepared(db), db
    )
    if audit_report["mismatched"]:
        failures.append(
            "audit fingerprints mismatched: %r"
            % audit_report["mismatched"]
        )

    db.close()
    out.write(
        "drill  : killed after %d batch(es); %d WAL record(s), "
        "checkpoint@%d, replayed %d%s\n"
        % (seen, report.wal_records, report.checkpoint_seq,
           report.replayed,
           ", torn tail truncated" if report.truncated_tail else "")
    )
    out.write(
        "audit  : %d entr%s, %d replay-checked, %d matched\n"
        % (audit_report["entries"],
           "y" if audit_report["entries"] == 1 else "ies",
           audit_report["checked"], audit_report["matched"])
    )
    out.write(
        "verify : %d root(s), answers %s\n"
        % (len(roots),
           "byte-identical to uncrashed control" if not failures
           else "MISMATCH")
    )
    if failures:
        for failure in failures:
            out.write("FAIL   : %s\n" % failure)
        return 1
    out.write("PASS\n")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.durability.crashdrill",
        description="kill -9 a serving process mid-burst, recover, and "
                    "verify byte-identical answers",
    )
    parser.add_argument("directory", nargs="?", default=None,
                        help="drill directory (default: a temp dir)")
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--batches", type=int, default=200,
                        help="max batches the child ingests (default 200)")
    parser.add_argument("--kill-after", type=int, default=5,
                        help="durable batches to wait for before the "
                             "kill (default 5)")
    args = parser.parse_args(argv)
    if args.child:
        if not args.directory:
            parser.error("--child requires a directory")
        return child_main(args.directory, args.batches)
    directory = args.directory
    if directory is None:
        import tempfile

        directory = tempfile.mkdtemp(prefix="repro-crashdrill-")
    return parent_main(directory, args.kill_after, args.batches)


if __name__ == "__main__":
    sys.exit(main())
