"""Crash consistency for the extensional database.

The engine's epoch machinery (atomic ``add_facts`` batches, monotone
per-relation epochs, epoch-pinned snapshots) gives every database state
a precise name: its epoch table.  This package makes that state survive
a process death:

* :mod:`~repro.durability.wal` — an append-only write-ahead log with
  one CRC-checked record per ``add_facts`` batch, a configurable fsync
  policy, and recovery that truncates a torn tail;
* :mod:`~repro.durability.checkpoint` — atomic snapshot files over the
  columnar ``to_bytes`` fast path, and :func:`recover`, which loads the
  newest valid checkpoint and replays the WAL suffix, verifying the
  final epoch table against the log;
* :mod:`~repro.durability.durable` — :class:`DurableDatabase`, a
  :class:`~repro.engine.database.Database` whose mutators append to the
  WAL *before* publishing, under the same mutation lock, so WAL order
  equals epoch order;
* :mod:`~repro.durability.audit` — a buffered JSONL per-request audit
  log with deterministic result fingerprints, replay-checkable after
  recovery.

The contract tying them together: a database recovered from
``checkpoint + WAL`` has the epoch table the WAL head describes, the
same lineage token as the process that died, and byte-identical
``to_text()`` contents — so re-running any persisted query yields
byte-identical rendered answers.
"""

from .audit import AuditLog, read_audit, verify_audit
from .checkpoint import (
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from .durable import DurableDatabase, RecoveryReport, recover
from .wal import WalReader, WalRecord, WriteAheadLog

__all__ = [
    "AuditLog",
    "CheckpointStore",
    "DurableDatabase",
    "RecoveryReport",
    "WalReader",
    "WalRecord",
    "WriteAheadLog",
    "read_audit",
    "read_checkpoint",
    "recover",
    "verify_audit",
    "write_checkpoint",
]
