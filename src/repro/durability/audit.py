"""Buffered JSONL audit log of served queries.

One JSON object per served request, written by
:class:`~repro.serve.service.QueryService` from its worker threads::

    {"request_id": 17, "form": "sg/2", "constants": ["a"],
     "epoch_hash": "...", "lineage": "...", "outcome": "completed",
     "strategy": "pointer_counting", "execution_time_ms": 1.84,
     "result_fingerprint": "...", "attempts": [...], "fallback": false}

Two fields make the log *replay-checkable* after recovery:

* ``epoch_hash`` — a digest of the epoch table the request was served
  against (plus the database lineage), naming the exact EDB state;
* ``result_fingerprint`` — an order-insensitive digest of the rendered
  answer set.

:func:`verify_audit` re-runs the completed entries against a database
and compares fingerprints — after a crash and recovery, entries whose
``epoch_hash`` matches the recovered state must reproduce their
fingerprints byte-identically, which is the end-to-end durability
check the crash drill performs.

Writes are buffered (``flush_every`` entries) and flushed on
:meth:`AuditLog.flush` / :meth:`~AuditLog.close` — the service drains
the buffer when it drains its queues.  Reading tolerates a torn final
line (the process may die mid-entry); everything before it parses.
"""

import hashlib
import io
import json
import os
import threading

_SCALARS = (str, int, float, bool, type(None))


def result_fingerprint(answers):
    """Order-insensitive sha256 over the rendered answer set.

    Hashes the sorted ``repr`` of each answer tuple — the same
    canonical text two byte-identical answer sets render to, however
    they were computed (any strategy, either storage backend).
    """
    digest = hashlib.sha256()
    for line in sorted(repr(answer) for answer in answers):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def epoch_hash(db, keys=None):
    """Digest naming one EDB state: lineage plus the epoch table.

    ``keys=None`` hashes every relation; passing a query's read keys
    restricts the name to the state that query can observe.
    """
    digest = hashlib.sha256()
    digest.update(getattr(db, "lineage", "").encode("ascii"))
    digest.update(b"\n")
    selected = sorted(db.keys() if keys is None else keys)
    for key in selected:
        digest.update(
            ("%s/%d:%d\n" % (key[0], key[1], db.epoch_of(key)))
            .encode("utf-8")
        )
    return digest.hexdigest()


def jsonable_constants(constants):
    """Render binding constants for the JSON entry.

    Returns ``(rendered, replayable)``: scalar constants pass through
    and can be fed back to ``PreparedQuery.run`` by the verifier;
    structured constants (tuples — the paper's encoded lists) are
    rendered as ``repr`` strings and the entry is marked
    non-replayable rather than lossily coerced.
    """
    if all(isinstance(value, _SCALARS) for value in constants):
        return list(constants), True
    return [repr(value) for value in constants], False


class AuditLog:
    """Append-only, thread-safe JSONL writer with buffered flushing.

    ``flush_every=1`` writes through on every entry (the crash drill
    uses this so the log is as current as the WAL); larger values
    amortize the write syscall across a burst.  Entries buffered but
    not yet flushed are lost in a crash — the audit log is an
    *observability* record, deliberately off the ingest hot path, so
    it trades tail completeness for zero added fsyncs.
    """

    def __init__(self, path, flush_every=32):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.flush_every = flush_every
        self._lock = threading.Lock()
        self._buffer = []
        self._handle = open(path, "a", encoding="utf-8")
        self.entries_written = 0

    def record(self, entry):
        """Buffer one entry (a JSON-ready dict)."""
        line = json.dumps(entry, sort_keys=True, default=repr)
        with self._lock:
            if self._handle.closed:
                return
            self._buffer.append(line)
            self.entries_written += 1
            if len(self._buffer) >= self.flush_every:
                self._flush_locked()

    def _flush_locked(self):
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._handle.flush()
            self._buffer = []

    def flush(self):
        """Write every buffered entry through to the file."""
        with self._lock:
            if not self._handle.closed:
                self._flush_locked()

    def close(self):
        with self._lock:
            if not self._handle.closed:
                self._flush_locked()
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "AuditLog(%s, %d entr%s)" % (
            self.path, self.entries_written,
            "y" if self.entries_written == 1 else "ies",
        )


def read_audit(path):
    """Parse an audit log; returns ``(entries, torn_tail)``.

    A final line that does not parse (the process died mid-write) is
    reported in ``torn_tail`` instead of raising; a malformed line
    *followed by* well-formed ones is real corruption and raises
    ``ValueError``.
    """
    if not os.path.exists(path):
        return [], None
    entries = []
    torn = None
    with io.open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                torn = "torn final entry (%d byte(s))" % len(line)
                break
            raise ValueError(
                "%s: malformed entry at line %d" % (path, index + 1)
            )
    return entries, torn


def verify_audit(path, prepared, db, budget=None, tenant=None,
                 registry=None):
    """Re-run an audit log's completed entries against ``db``.

    Only entries that (a) completed, (b) carry replayable constants,
    and (c) were served against the state ``db`` is currently in
    (matching ``epoch_hash``) are checked — a request served before
    the last batches a crash destroyed *should* not reproduce, and is
    counted as skipped, not failed.

    Multi-tenant logs stamp each entry with its ``tenant``; passing
    ``tenant=`` restricts verification to that tenant's slice of the
    log, so each tenant's served answers are replay-checkable in
    isolation.  Entries naming a registered ``form`` are re-run
    through ``registry`` when one is given (falling back to
    ``prepared`` otherwise, which may be ``None`` if every checked
    entry names a form).

    Returns a report dict: ``checked`` / ``matched`` / ``skipped``, a
    ``mismatched`` list of ``(request_id, expected, got)`` — which
    must be empty after a faithful recovery — and a ``by_tenant``
    block with per-tenant entry/checked/matched/mismatched tallies
    over the verified slice.
    """
    entries, torn = read_audit(path)
    current = epoch_hash(db)
    checked = matched = skipped = 0
    mismatched = []
    by_tenant = {}
    for entry in entries:
        name = entry.get("tenant")
        if tenant is not None and name != tenant:
            continue
        tally = by_tenant.setdefault(
            name if name is not None else "",
            {"entries": 0, "checked": 0, "matched": 0,
             "mismatched": 0},
        )
        tally["entries"] += 1
        if (
            entry.get("outcome") != "completed"
            or not entry.get("replayable", False)
            or entry.get("epoch_hash") != current
        ):
            skipped += 1
            continue
        runner = prepared
        form = entry.get("form")
        if form is not None and registry is not None:
            runner = registry.get(form).prepared
        if runner is None:
            skipped += 1
            continue
        checked += 1
        tally["checked"] += 1
        result = runner.run(
            tuple(entry["constants"]), db=db, budget=budget
        )
        fingerprint = result_fingerprint(result.answers)
        if fingerprint == entry["result_fingerprint"]:
            matched += 1
            tally["matched"] += 1
        else:
            tally["mismatched"] += 1
            mismatched.append(
                (entry.get("request_id"),
                 entry["result_fingerprint"], fingerprint)
            )
    return {
        "entries": len(entries),
        "checked": checked,
        "matched": matched,
        "skipped": skipped,
        "mismatched": mismatched,
        "by_tenant": by_tenant,
        "torn_tail": torn,
    }
