"""repro — reproduction of Greco & Zaniolo, "Optimization of Linear
Logic Programs Using Counting Methods" (EDBT 1992).

Public API (stable):

* language layer: :func:`parse_program`, :func:`parse_query`,
  :class:`Program`, :class:`Query`, AST classes;
* storage/evaluation: :class:`Database`, :func:`evaluate`;
* optimization: :func:`optimize` and the method-specific rewritings in
  :mod:`repro.rewriting`.
"""

from .datalog import (
    Atom,
    Comparison,
    Compound,
    Constant,
    Negation,
    Program,
    ProgramAnalysis,
    Query,
    Rule,
    Variable,
    format_program,
    format_query,
    format_rule,
    parse_atom,
    parse_program,
    parse_query,
)
from .engine import (
    CancellationToken,
    Database,
    DatabaseSnapshot,
    EvalStats,
    QueryResult,
    ResourceBudget,
    evaluate_query,
)
from .exec import (
    AnswerCache,
    CountingTableStore,
    ExecutionReport,
    ExecutionResult,
    FallbackPolicy,
    PreparedQuery,
    STRATEGIES,
    run_resilient,
    run_strategy,
)
from .serve import (
    BreakerBoard,
    CircuitBreaker,
    QueryService,
    RetryPolicy,
)
from .tenancy import (
    FairScheduler,
    FormRegistry,
    TenantQuota,
    TokenBucket,
)
from .rewriting import (
    OptimizationPlan,
    adorn_query,
    classical_counting_rewrite,
    extended_counting_rewrite,
    magic_rewrite,
    optimize,
    reduce_rewriting,
)
from . import errors

#: Evaluate a query directly (no rewriting) with the semi-naive engine.
evaluate = evaluate_query

__version__ = "1.0.0"

__all__ = [
    "AnswerCache",
    "Atom",
    "BreakerBoard",
    "CancellationToken",
    "CircuitBreaker",
    "Comparison",
    "Compound",
    "Constant",
    "CountingTableStore",
    "Database",
    "DatabaseSnapshot",
    "EvalStats",
    "ExecutionReport",
    "ExecutionResult",
    "FairScheduler",
    "FallbackPolicy",
    "FormRegistry",
    "Negation",
    "PreparedQuery",
    "QueryService",
    "ResourceBudget",
    "RetryPolicy",
    "OptimizationPlan",
    "Program",
    "ProgramAnalysis",
    "Query",
    "QueryResult",
    "Rule",
    "STRATEGIES",
    "TenantQuota",
    "TokenBucket",
    "Variable",
    "adorn_query",
    "classical_counting_rewrite",
    "errors",
    "evaluate",
    "evaluate_query",
    "extended_counting_rewrite",
    "format_program",
    "format_query",
    "format_rule",
    "magic_rewrite",
    "optimize",
    "parse_atom",
    "parse_program",
    "parse_query",
    "reduce_rewriting",
    "run_resilient",
    "run_strategy",
]
