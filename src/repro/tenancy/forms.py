"""A registry of named, versioned prepared query forms.

In a multi-tenant service, callers do not submit raw programs: they
submit ``(form_name, constants)`` against a :class:`FormRegistry` the
operator populated.  Registration does the expensive work once —
:class:`~repro.exec.prepared.PreparedQuery` compiles the rewriting —
and *prices* the form with a static cost class so admission can charge
a tenant's quota before the fixpoint has burned anything.

The price follows the size-bound-adornment idea (see PAPERS.md): the
goal's adornment says how selective the binding is (every free position
multiplies the reachable answer space), and the EDB sizes of the
relations the rewritten program reads bound the facts any evaluation
can touch.  :meth:`~repro.exec.prepared.PreparedQuery.size_bound`
computes the estimate; the registry buckets it into ``light`` /
``medium`` / ``heavy`` classes whose integer costs feed the
deficit-round-robin scheduler — a tenant spending its weight on heavy
forms gets proportionally fewer of them per rotation.

Re-registering a name bumps its version and makes the new form the
default; old versions stay resolvable so in-flight clients pinned to a
version keep working across a rollout.
"""

from ..errors import UnknownFormError
from ..exec.prepared import PreparedQuery

#: Cost classes in ascending order with their scheduler costs.
LIGHT, MEDIUM, HEAVY = "light", "medium", "heavy"
COST_OF = {LIGHT: 1.0, MEDIUM: 2.0, HEAVY: 4.0}


class RegisteredForm:
    """One immutable (name, version) entry of a :class:`FormRegistry`."""

    __slots__ = ("name", "version", "prepared", "size_bound",
                 "cost_class", "cost")

    def __init__(self, name, version, prepared, size_bound, cost_class):
        self.name = name
        self.version = version
        self.prepared = prepared
        self.size_bound = size_bound
        self.cost_class = cost_class
        self.cost = COST_OF[cost_class]

    def describe(self):
        return {
            "version": self.version,
            "method": self.prepared.method,
            "adornment": self.prepared.template.adornment(),
            "size_bound": self.size_bound,
            "cost_class": self.cost_class,
            "cost": self.cost,
        }

    def __repr__(self):
        return "RegisteredForm(%s@v%d, %s, %s)" % (
            self.name, self.version, self.prepared.method,
            self.cost_class,
        )


class FormRegistry:
    """Named, versioned prepared forms with static cost classes.

    Parameters
    ----------
    db : :class:`~repro.engine.database.Database` or None
        Default database for method auto-selection and size-bound
        estimation at registration time.
    light_bound, medium_bound : int
        Size-bound thresholds separating the cost classes: an estimate
        up to ``light_bound`` is ``light``, up to ``medium_bound`` is
        ``medium``, above it ``heavy``.
    """

    def __init__(self, db=None, light_bound=512, medium_bound=8192):
        if not 0 < light_bound < medium_bound:
            raise ValueError(
                "need 0 < light_bound < medium_bound"
            )
        self.db = db
        self.light_bound = light_bound
        self.medium_bound = medium_bound
        self._forms = {}

    def classify(self, size_bound):
        if size_bound <= self.light_bound:
            return LIGHT
        if size_bound <= self.medium_bound:
            return MEDIUM
        return HEAVY

    def register(self, name, query, db=None, method="auto", cache=None,
                 counting_store=None, cost_class=None):
        """Prepare and price ``query`` under ``name``; returns the form.

        A repeated name registers a new *version* (monotonically
        numbered from 1) and makes it the default resolution target.
        ``cost_class`` overrides the static estimate when the operator
        knows better (e.g. a form whose data is known to be skewed).
        """
        db = db if db is not None else self.db
        prepared = PreparedQuery(
            query, db, method=method, cache=cache,
            counting_store=counting_store,
        )
        size_bound = prepared.size_bound(db) if db is not None else None
        if cost_class is None:
            cost_class = (
                MEDIUM if size_bound is None
                else self.classify(size_bound)
            )
        elif cost_class not in COST_OF:
            raise ValueError(
                "cost_class must be one of %s" % sorted(COST_OF)
            )
        versions = self._forms.setdefault(name, [])
        form = RegisteredForm(
            name, len(versions) + 1, prepared,
            size_bound if size_bound is not None else 0, cost_class,
        )
        versions.append(form)
        return form

    def get(self, name, version=None):
        """Resolve a form; latest version unless one is pinned."""
        versions = self._forms.get(name)
        if not versions:
            raise UnknownFormError(
                "no query form registered under %r (have: %s)"
                % (name, ", ".join(sorted(self._forms)) or "none")
            )
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise UnknownFormError(
                "form %r has versions 1..%d, not %d"
                % (name, len(versions), version)
            )
        return versions[version - 1]

    def names(self):
        return sorted(self._forms)

    def __contains__(self, name):
        return name in self._forms

    def __len__(self):
        return len(self._forms)

    def describe(self):
        """``{name: latest-version descriptor}`` for counters/CLI."""
        return {
            name: versions[-1].describe()
            for name, versions in sorted(self._forms.items())
        }

    def __repr__(self):
        return "FormRegistry(%s)" % (
            ", ".join(
                "%s@v%d" % (name, len(versions))
                for name, versions in sorted(self._forms.items())
            ) or "empty"
        )
