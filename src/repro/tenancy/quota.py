"""Per-tenant quotas: token buckets and cumulative resource pools.

A tenant's allowance has three independent axes, all refilled on an
injectable clock so tests step through admission decisions without
sleeping:

* **Request rate** — a classic :class:`TokenBucket` of ``rate`` tokens
  per second up to ``burst``; a submit that finds no token is shed with
  :class:`~repro.errors.QuotaExceeded` (``resource='rate'``) carrying
  the exact refill time as its ``retry_after`` hint.
* **Concurrency** — ``max_concurrent`` caps the tenant's requests in
  the system at once (queued plus in flight); enforced by the service
  under its admission lock.
* **Cumulative resources** — a :class:`ResourcePool` per resource
  (derived facts, fixpoint rounds, wall-clock seconds) charged *after*
  each attempt from what the attempt's
  :meth:`~repro.engine.guard.ResourceBudget.usage` reports.  Charging
  is post-paid, so one expensive query can drive a pool into debt; the
  pool then refuses new admissions until its refill rate pays the debt
  off — which is precisely the ``retry_after`` the shed error carries.

The configuration lives in the immutable :class:`TenantQuota`; the
mutable runtime state (bucket levels, pool balances) is built from it
per service via :meth:`TenantQuota.bucket` / :meth:`TenantQuota.pools`.
"""

import threading
import time


class TokenBucket:
    """``rate`` tokens/second up to ``burst``, on an injectable clock.

    ``try_take`` is the admission gate; ``refill_after`` prices the
    wait for a shed caller.  Refill is continuous (fractional tokens
    accumulate), so two calls at the same fake-clock instant see the
    same level — admission decisions are deterministic per clock
    schedule.
    """

    __slots__ = ("rate", "burst", "_clock", "_lock", "_tokens",
                 "_stamped", "taken", "denied")

    def __init__(self, rate, burst=None, clock=None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(rate if burst is None else burst)
        if self.burst < 1.0:
            raise ValueError("burst must admit at least one request")
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._stamped = None
        self.taken = 0
        self.denied = 0

    def _refill_locked(self):
        now = self._clock()
        if self._stamped is None:
            self._stamped = now
        elif now > self._stamped:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamped) * self.rate
            )
            self._stamped = now
        return now

    def try_take(self, tokens=1):
        """Take ``tokens`` if available; returns True on success."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.taken += 1
                return True
            self.denied += 1
            return False

    def refill_after(self, tokens=1):
        """Seconds until ``tokens`` are available (0.0 if already)."""
        with self._lock:
            self._refill_locked()
            missing = tokens - self._tokens
            if missing <= 0:
                return 0.0
            return missing / self.rate

    def level(self):
        """Current token level (refilled to now)."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    def __repr__(self):
        return "TokenBucket(%.3g/s, burst %.3g, %.3g available)" % (
            self.rate, self.burst, self.level()
        )


class ResourcePool:
    """A cumulative allowance that refills over time and admits debt.

    ``capacity`` units, refilling at ``refill`` units/second.  Usage is
    charged *after* the work ran (:meth:`charge` — the balance may go
    negative, since a query's cost is only known once it finished), and
    admission asks :meth:`admits` *before* new work starts: a pool in
    debt refuses until the refill pays it back above zero.
    """

    __slots__ = ("name", "capacity", "refill", "_clock", "_lock",
                 "_balance", "_stamped", "charged", "denied")

    def __init__(self, name, capacity, refill, clock=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill < 0:
            raise ValueError("refill must be non-negative")
        self.name = name
        self.capacity = float(capacity)
        self.refill = float(refill)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._balance = self.capacity
        self._stamped = None
        #: Total units ever charged (monotone, for counters).
        self.charged = 0.0
        self.denied = 0

    def _refill_locked(self):
        now = self._clock()
        if self._stamped is None:
            self._stamped = now
        elif now > self._stamped:
            self._balance = min(
                self.capacity,
                self._balance + (now - self._stamped) * self.refill,
            )
            self._stamped = now

    def charge(self, amount):
        """Deduct ``amount`` units (post-paid; may drive debt)."""
        if amount <= 0:
            return
        with self._lock:
            self._refill_locked()
            self._balance -= amount
            self.charged += amount

    def admits(self):
        """May new work start against this pool right now?"""
        with self._lock:
            self._refill_locked()
            if self._balance > 0:
                return True
            self.denied += 1
            return False

    def balance(self):
        with self._lock:
            self._refill_locked()
            return self._balance

    def retry_after(self):
        """Seconds until the balance turns positive (0.0 if it is)."""
        with self._lock:
            self._refill_locked()
            if self._balance > 0:
                return 0.0
            if self.refill <= 0:
                return float("inf")
            # Refill to just above zero, not back to capacity.
            return -self._balance / self.refill

    def __repr__(self):
        return "ResourcePool(%s, %.3g/%.3g, +%.3g/s)" % (
            self.name, self.balance(), self.capacity, self.refill
        )


class TenantQuota:
    """Immutable per-tenant allowance configuration.

    Parameters
    ----------
    rate, burst : float or None
        Token-bucket request rate (requests/second) and burst size;
        ``rate=None`` means unlimited request rate.
    max_concurrent : int or None
        Cap on the tenant's requests in the system at once (queued
        plus in flight); ``None`` = unlimited.
    queue_capacity : int or None
        The tenant's admission-lane depth; ``None`` inherits the
        service-wide default.
    weight : float
        Deficit-round-robin scheduling weight — long-run service under
        saturation is proportional to it (see
        :class:`~repro.tenancy.scheduler.FairScheduler`).
    facts, rounds, seconds : (capacity, refill_per_second) or None
        Cumulative :class:`ResourcePool` specs, charged post-paid from
        every attempt's :meth:`~repro.engine.guard.ResourceBudget.usage`.
    max_eval_workers : int or None
        Cap on the data-parallel evaluation processes one request of
        this tenant may be granted (see
        :meth:`~repro.serve.service.QueryService.submit`'s
        ``eval_workers``).  Requests asking for more are *clamped*, not
        shed — parallelism is an accelerator, never a correctness
        requirement.  ``None`` = no tenant cap; ``1`` forces the tenant
        serial.
    """

    __slots__ = ("rate", "burst", "max_concurrent", "queue_capacity",
                 "weight", "facts", "rounds", "seconds",
                 "max_eval_workers")

    def __init__(self, rate=None, burst=None, max_concurrent=None,
                 queue_capacity=None, weight=1.0, facts=None,
                 rounds=None, seconds=None, max_eval_workers=None):
        if weight <= 0:
            raise ValueError("weight must be positive")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if max_eval_workers is not None and max_eval_workers < 1:
            raise ValueError("max_eval_workers must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_concurrent = max_concurrent
        self.queue_capacity = queue_capacity
        self.weight = float(weight)
        self.facts = facts
        self.rounds = rounds
        self.seconds = seconds
        self.max_eval_workers = max_eval_workers

    def bucket(self, clock=None):
        """A fresh :class:`TokenBucket`, or None without a rate."""
        if self.rate is None:
            return None
        return TokenBucket(self.rate, burst=self.burst, clock=clock)

    def pools(self, clock=None):
        """``{resource: ResourcePool}`` for every configured pool."""
        pools = {}
        for name in ("facts", "rounds", "seconds"):
            spec = getattr(self, name)
            if spec is None:
                continue
            capacity, refill = spec
            pools[name] = ResourcePool(name, capacity, refill,
                                       clock=clock)
        return pools

    def __repr__(self):
        parts = ["weight=%g" % self.weight]
        if self.rate is not None:
            parts.append("rate=%g/s" % self.rate)
        if self.max_concurrent is not None:
            parts.append("max_concurrent=%d" % self.max_concurrent)
        if self.max_eval_workers is not None:
            parts.append("max_eval_workers=%d" % self.max_eval_workers)
        for name in ("facts", "rounds", "seconds"):
            if getattr(self, name) is not None:
                parts.append("%s=%r" % (name, getattr(self, name)))
        return "TenantQuota(%s)" % ", ".join(parts)
