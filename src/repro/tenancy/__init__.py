"""Multi-tenant serving primitives: forms, quotas, fair scheduling.

Three pieces the serve layer (:mod:`repro.serve`) composes into a
multi-tenant :class:`~repro.serve.service.QueryService`:

* :class:`FormRegistry` — named, versioned
  :class:`~repro.exec.prepared.PreparedQuery` forms with static cost
  classes, so tenants submit ``(form_name, constants)`` instead of raw
  programs and admission can price a request before it runs;
* :class:`TenantQuota` — per-tenant token-bucket request rates,
  concurrent-slot caps, and cumulative resource pools (facts, rounds,
  wall-clock) refilled on an injectable clock;
* :class:`FairScheduler` — per-tenant bounded admission lanes drained
  by deficit round-robin, so one tenant's backlog cannot starve
  another's.
"""

from .forms import COST_OF, HEAVY, LIGHT, MEDIUM, FormRegistry, \
    RegisteredForm
from .quota import ResourcePool, TenantQuota, TokenBucket
from .scheduler import FairScheduler

__all__ = [
    "COST_OF",
    "FairScheduler",
    "FormRegistry",
    "HEAVY",
    "LIGHT",
    "MEDIUM",
    "RegisteredForm",
    "ResourcePool",
    "TenantQuota",
    "TokenBucket",
]
