"""Weighted-fair admission queues: deficit round-robin over tenants.

One bounded FIFO *lane* per tenant replaces the service's single global
queue.  Workers pull from :meth:`FairScheduler.take`, which implements
deficit round-robin (Shreedhar & Varghese): each lane owns a *deficit*
counter; on its turn a lane earns ``quantum * weight`` deficit and may
dispatch queued items while its deficit covers their cost.  Costs come
from the registry's per-form cost classes, so a tenant burning heavy
query forms drains its deficit faster than one issuing cheap lookups —
long-run service under saturation is proportional to *weighted work*,
not request count.

Two properties matter for isolation:

* a full lane sheds only its own tenant's submissions (the service
  raises :class:`~repro.errors.Overloaded` with the tenant name) —
  other lanes are untouched;
* a lane with queued work can be starved for at most one full rotation
  of the other active lanes, because every rotation grows its deficit
  by ``quantum * weight`` while costs are bounded.

The scheduler is a condition-synchronised queue: ``take`` blocks while
every lane is empty, and :meth:`close` wakes all waiters — after close,
``take`` drains the remaining queued items (so accepted work still
runs) and only then returns ``None`` to release each worker.
"""

import threading
from collections import deque


class _Lane:
    __slots__ = ("tenant", "weight", "capacity", "items", "deficit",
                 "served", "served_cost", "offered", "refused")

    def __init__(self, tenant, weight, capacity):
        self.tenant = tenant
        self.weight = float(weight)
        self.capacity = capacity
        self.items = deque()
        self.deficit = 0.0
        #: Items dispatched / their summed cost (for fairness probes).
        self.served = 0
        self.served_cost = 0.0
        self.offered = 0
        self.refused = 0


class FairScheduler:
    """Deficit-round-robin dispatch over per-tenant bounded lanes."""

    def __init__(self, quantum=1.0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._lanes = {}
        #: Active rotation: lanes with queued items, in DRR order.
        self._active = deque()
        self._closed = False
        self._depth = 0
        self.max_depth = 0

    def add_lane(self, tenant, weight=1.0, capacity=16):
        if weight <= 0:
            raise ValueError("weight must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        with self._lock:
            if tenant in self._lanes:
                raise ValueError("lane %r already exists" % (tenant,))
            self._lanes[tenant] = _Lane(tenant, weight, capacity)

    def offer(self, tenant, item, cost=1.0):
        """Queue ``item`` on the tenant's lane; False when full/closed.

        ``cost`` is the deficit the item will consume when dispatched
        (a registered form's cost class); it must be positive so every
        rotation makes progress.
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        with self._lock:
            lane = self._lanes[tenant]
            lane.offered += 1
            if self._closed or len(lane.items) >= lane.capacity:
                lane.refused += 1
                return False
            lane.items.append((item, cost))
            if len(lane.items) == 1:
                self._active.append(lane)
            self._depth += 1
            if self._depth > self.max_depth:
                self.max_depth = self._depth
            self._ready.notify()
            return True

    def take(self, block=True, timeout=None):
        """Next item by deficit round-robin.

        Blocks while every lane is empty (unless ``block=False``).
        Returns ``None`` when the scheduler is closed and drained —
        each worker thread takes that as its exit signal — or, with
        ``block=False`` / ``timeout``, when nothing is available in
        time.
        """
        with self._ready:
            while True:
                item = self._next_locked()
                if item is not None:
                    return item
                if self._closed:
                    return None
                if not block:
                    return None
                if not self._ready.wait(timeout):
                    return None

    def _next_locked(self):
        while self._active:
            lane = self._active[0]
            if not lane.items:  # pragma: no cover - defensive
                self._active.popleft()
                lane.deficit = 0.0
                continue
            head_cost = lane.items[0][1]
            if lane.deficit < head_cost:
                # Earn this turn's quantum and rotate; deficits grow
                # every rotation, so some lane's head is reached in at
                # most ceil(max_cost / (quantum * min_weight)) turns.
                lane.deficit += self.quantum * lane.weight
                self._active.rotate(-1)
                continue
            lane.deficit -= head_cost
            item, cost = lane.items.popleft()
            lane.served += 1
            lane.served_cost += cost
            self._depth -= 1
            if not lane.items:
                # An emptied lane leaves the rotation and forfeits its
                # saved deficit — an idle tenant must not bank service
                # credit to burst past its weight later (classic DRR).
                self._active.popleft()
                lane.deficit = 0.0
            return item
        return None

    def close(self):
        """Stop accepting offers and wake every blocked ``take``."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    @property
    def closed(self):
        with self._lock:
            return self._closed

    def depth(self):
        """Total queued items across all lanes."""
        with self._lock:
            return self._depth

    def lane_depth(self, tenant):
        with self._lock:
            return len(self._lanes[tenant].items)

    def lane_stats(self):
        """``{tenant: {...}}`` queue/served counters per lane."""
        with self._lock:
            return {
                lane.tenant: {
                    "depth": len(lane.items),
                    "capacity": lane.capacity,
                    "weight": lane.weight,
                    "served": lane.served,
                    "served_cost": lane.served_cost,
                    "offered": lane.offered,
                    "refused": lane.refused,
                }
                for lane in self._lanes.values()
            }

    def __repr__(self):
        with self._lock:
            return "FairScheduler(%d lane(s), depth %d%s)" % (
                len(self._lanes), self._depth,
                ", closed" if self._closed else "",
            )
